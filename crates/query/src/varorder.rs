//! Variable orders and view-tree shapes.
//!
//! A *variable order* is a forest over the query variables; each atom hangs
//! as a leaf under the lowest of its variables, and an atom's variables
//! must form a chain of ancestors (the standard shape for hierarchical
//! queries; Fig 3 and Ex 4.14 of the paper are both such forests). The
//! incremental engines in `ivm-core` build one grouped view per variable
//! node, keyed by the node's *dependency set* `dep(X)` — the ancestors of
//! `X` that co-occur with `X`'s subtree.
//!
//! This module provides:
//!
//! * [`VarOrder::canonical`] — the canonical order for hierarchical
//!   queries (free variables first), which yields constant-time updates
//!   and constant-delay enumeration exactly for q-hierarchical queries;
//! * [`VarOrderBuilder`] — manual construction for the mixed
//!   static-dynamic trees of Sec. 4.5;
//! * validation and the operational checks (`constant_update_atoms`,
//!   `free_top`) that the engines rely on;
//! * [`find_tractable_order`] — exhaustive search over forests for small
//!   queries, used to decide static-dynamic tractability (Sec. 4.5).

use crate::ast::Query;
use crate::hierarchy::is_hierarchical;
use ivm_data::{Schema, Sym};

/// Index of a node within a [`VarOrder`] arena.
pub type NodeId = usize;

/// A node of a variable order.
#[derive(Clone, Debug)]
pub enum Node {
    /// A variable node; its grouped view is keyed by `dep`.
    Var {
        /// The variable.
        var: Sym,
        /// `dep(X)`: ancestors co-occurring with the subtree's atoms.
        dep: Schema,
        /// Children (variable nodes or atom leaves).
        children: Vec<NodeId>,
    },
    /// An atom leaf (index into `Query::atoms`).
    Atom {
        /// Index into the query's atom list.
        atom: usize,
    },
}

/// A variable order: a forest over the query variables with atoms at the
/// leaves.
#[derive(Clone, Debug)]
pub struct VarOrder {
    /// Node arena.
    pub nodes: Vec<Node>,
    /// Root nodes (one per connected component).
    pub roots: Vec<NodeId>,
}

/// Why a variable order could not be built or validated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VarOrderError {
    /// The query is not hierarchical (canonical construction only).
    NotHierarchical,
    /// An atom's variables do not form a chain of ancestors.
    AtomNotOnPath(usize),
    /// A variable or atom is missing or duplicated.
    Malformed(String),
}

impl std::fmt::Display for VarOrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarOrderError::NotHierarchical => write!(f, "query is not hierarchical"),
            VarOrderError::AtomNotOnPath(i) => {
                write!(f, "atom #{i}'s variables are not a chain of ancestors")
            }
            VarOrderError::Malformed(m) => write!(f, "malformed variable order: {m}"),
        }
    }
}

impl std::error::Error for VarOrderError {}

impl VarOrder {
    /// The variable of a node, if it is a variable node.
    pub fn var_of(&self, id: NodeId) -> Option<Sym> {
        match &self.nodes[id] {
            Node::Var { var, .. } => Some(*var),
            Node::Atom { .. } => None,
        }
    }

    /// The dependency set of a variable node.
    pub fn dep_of(&self, id: NodeId) -> &Schema {
        match &self.nodes[id] {
            Node::Var { dep, .. } => dep,
            Node::Atom { .. } => panic!("dep_of on atom leaf"),
        }
    }

    /// Children of a node (empty for leaves).
    pub fn children_of(&self, id: NodeId) -> &[NodeId] {
        match &self.nodes[id] {
            Node::Var { children, .. } => children,
            Node::Atom { .. } => &[],
        }
    }

    /// Parent map (computed on demand; trees are tiny).
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let mut p = vec![None; self.nodes.len()];
        for (id, n) in self.nodes.iter().enumerate() {
            if let Node::Var { children, .. } = n {
                for &c in children {
                    p[c] = Some(id);
                }
            }
        }
        p
    }

    /// The path of node ids from `id` up to (and including) its root.
    pub fn path_to_root(&self, id: NodeId) -> Vec<NodeId> {
        let parents = self.parents();
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = parents[cur] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// The node id of the leaf for atom index `i`.
    pub fn atom_leaf(&self, i: usize) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| matches!(n, Node::Atom { atom } if *atom == i))
    }

    /// All variable ancestors of a node (nearest first), excluding itself.
    pub fn var_ancestors(&self, id: NodeId) -> Vec<Sym> {
        self.path_to_root(id)
            .into_iter()
            .skip(1)
            .filter_map(|n| self.var_of(n))
            .collect()
    }

    /// Validate the order against its query and recompute dependency sets.
    ///
    /// Checks: every atom appears exactly once; every variable appears
    /// exactly once; each atom's schema is contained in its variable
    /// ancestors; each variable occurs in at least one atom of its subtree.
    pub fn validate_and_finish(mut self, q: &Query) -> Result<VarOrder, VarOrderError> {
        // Atom occurrence checks.
        let mut seen_atoms = vec![0usize; q.atoms.len()];
        let mut seen_vars: Vec<Sym> = Vec::new();
        for n in &self.nodes {
            match n {
                Node::Atom { atom } => {
                    if *atom >= q.atoms.len() {
                        return Err(VarOrderError::Malformed(format!(
                            "atom index {atom} out of range"
                        )));
                    }
                    seen_atoms[*atom] += 1;
                }
                Node::Var { var, .. } => {
                    if seen_vars.contains(var) {
                        return Err(VarOrderError::Malformed(format!(
                            "variable {var} appears twice"
                        )));
                    }
                    seen_vars.push(*var);
                }
            }
        }
        if seen_atoms.iter().any(|&c| c != 1) {
            return Err(VarOrderError::Malformed(
                "every atom must appear exactly once".into(),
            ));
        }
        for &v in q.variables().vars() {
            if !seen_vars.contains(&v) {
                return Err(VarOrderError::Malformed(format!(
                    "variable {v} missing from order"
                )));
            }
        }

        // Each atom's schema must lie on its ancestor path.
        for i in 0..q.atoms.len() {
            let leaf = self.atom_leaf(i).expect("checked above");
            let anc = self.var_ancestors(leaf);
            let ok = q.atoms[i].schema.vars().iter().all(|v| anc.contains(v));
            if !ok {
                return Err(VarOrderError::AtomNotOnPath(i));
            }
        }

        // Recompute dep sets: dep(X) = ancestors(X) ∩ vars(subtree atoms),
        // ordered root-to-leaf along the ancestor path (stable keys).
        let subtree_vars = self.subtree_atom_vars(q);
        let node_ids: Vec<NodeId> = (0..self.nodes.len()).collect();
        for id in node_ids {
            if self.var_of(id).is_some() {
                let mut anc = self.var_ancestors(id);
                anc.reverse(); // root first
                let dep: Vec<Sym> = anc
                    .into_iter()
                    .filter(|v| subtree_vars[id].contains(*v))
                    .collect();
                // Every variable must occur in its own subtree's atoms;
                // otherwise its view is unconstrained (invalid order).
                let var = self.var_of(id).unwrap();
                if !subtree_vars[id].contains(var) {
                    return Err(VarOrderError::Malformed(format!(
                        "variable {var} does not occur in any atom of its subtree"
                    )));
                }
                if let Node::Var { dep: d, .. } = &mut self.nodes[id] {
                    *d = Schema::new(dep);
                }
            }
        }
        Ok(self)
    }

    /// For each node, the set of variables occurring in atoms of its
    /// subtree.
    fn subtree_atom_vars(&self, q: &Query) -> Vec<Schema> {
        let mut out = vec![Schema::empty(); self.nodes.len()];
        // Post-order accumulate.
        fn rec(vo: &VarOrder, q: &Query, id: NodeId, out: &mut Vec<Schema>) {
            match &vo.nodes[id] {
                Node::Atom { atom } => {
                    out[id] = q.atoms[*atom].schema.clone();
                }
                Node::Var { children, .. } => {
                    let mut acc = Schema::empty();
                    for &c in children.clone().iter() {
                        rec(vo, q, c, out);
                        acc = acc.union(&out[c]);
                    }
                    out[id] = acc;
                }
            }
        }
        for &r in &self.roots {
            rec(self, q, r, &mut out);
        }
        out
    }

    /// Canonical variable order for a hierarchical query: within each
    /// connected component, the variables occurring in all atoms form the
    /// top chain (free variables first), and the construction recurses on
    /// the remaining variables.
    pub fn canonical(q: &Query) -> Result<VarOrder, VarOrderError> {
        if !is_hierarchical(q) {
            return Err(VarOrderError::NotHierarchical);
        }
        let mut b = VarOrderBuilder::new();
        let all_atoms: Vec<usize> = (0..q.atoms.len()).collect();
        let avail = q.variables();
        let roots = canonical_rec(q, &mut b, &all_atoms, &avail)?;
        b.finish(roots, q)
    }

    /// Whether free variables are upward-closed in the forest (a bound
    /// variable never sits above a free one). Required for constant-delay
    /// enumeration; holds for canonical orders of q-hierarchical queries.
    pub fn free_top(&self, q: &Query) -> bool {
        for (id, n) in self.nodes.iter().enumerate() {
            if let Node::Var { var, .. } = n {
                if q.is_free(*var) {
                    let anc = self.var_ancestors(id);
                    if anc.iter().any(|&a| !q.is_free(a)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Per atom: whether a single-tuple update to it propagates in constant
    /// time, i.e. for every variable ancestor `X` of the atom's leaf,
    /// `dep(X) ∪ {X} ⊆ schema(atom)` — all view keys and sibling lookups
    /// along the path are determined by the update tuple.
    pub fn constant_update_atoms(&self, q: &Query) -> Vec<bool> {
        (0..q.atoms.len())
            .map(|i| {
                let leaf = self.atom_leaf(i).expect("validated order");
                let schema = &q.atoms[i].schema;
                for node in self.path_to_root(leaf).into_iter().skip(1) {
                    if let Node::Var { var, dep, .. } = &self.nodes[node] {
                        if !schema.contains(*var) || !dep.subset_of(schema) {
                            return false;
                        }
                        // Sibling lookups at this node need keys within
                        // dep ∪ {var} ⊆ schema, which the two checks above
                        // already guarantee (sibling deps ⊆ dep ∪ {var}).
                    }
                }
                true
            })
            .collect()
    }

    /// Whether all *dynamic* atoms have constant-time updates under this
    /// order (the Sec. 4.5 condition specialized to our engine).
    pub fn supports_constant_updates(&self, q: &Query) -> bool {
        let ok = self.constant_update_atoms(q);
        q.dynamic_atoms().into_iter().all(|i| ok[i])
    }
}

fn canonical_rec(
    q: &Query,
    b: &mut VarOrderBuilder,
    atoms: &[usize],
    avail: &Schema,
) -> Result<Vec<NodeId>, VarOrderError> {
    // Split into connected components via available variables.
    let comps = components(q, atoms, avail);
    let mut roots = Vec::new();
    for comp in comps {
        // Variables of this component still available.
        let mut comp_vars = Schema::empty();
        for &a in &comp {
            comp_vars = comp_vars.union(&q.atoms[a].schema.intersect(avail));
        }
        if comp_vars.is_empty() {
            // Atoms with no remaining variables become leaves here.
            for &a in &comp {
                roots.push(b.atom(a));
            }
            continue;
        }
        // Variables occurring in every atom of the component.
        let common: Vec<Sym> = comp_vars
            .vars()
            .iter()
            .copied()
            .filter(|&v| comp.iter().all(|&a| q.atoms[a].schema.contains(v)))
            .collect();
        if common.is_empty() {
            // Connected multi-atom component with no common variable:
            // impossible for hierarchical queries.
            return Err(VarOrderError::NotHierarchical);
        }
        // Chain order: free variables first (in the query's output order),
        // then bound.
        let mut chain: Vec<Sym> = Vec::new();
        for &v in q.free.vars() {
            if common.contains(&v) {
                chain.push(v);
            }
        }
        for &v in &common {
            if !chain.contains(&v) {
                chain.push(v);
            }
        }
        let remaining = {
            let common_schema = Schema::new(common.iter().copied());
            avail.difference(&common_schema)
        };
        let below = canonical_rec(q, b, &comp, &remaining)?;
        // Build the chain bottom-up.
        let mut children = below;
        for &v in chain.iter().rev() {
            let node = b.var(v, children);
            children = vec![node];
        }
        roots.push(children[0]);
    }
    Ok(roots)
}

/// Connected components of `atoms` where atoms are adjacent when they share
/// a variable in `avail`.
fn components(q: &Query, atoms: &[usize], avail: &Schema) -> Vec<Vec<usize>> {
    let n = atoms.len();
    let mut comp: Vec<usize> = (0..n).collect();
    fn find(c: &mut Vec<usize>, i: usize) -> usize {
        if c[i] != i {
            let r = find(c, c[i]);
            c[i] = r;
        }
        c[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            let share = q.atoms[atoms[i]]
                .schema
                .vars()
                .iter()
                .any(|&v| avail.contains(v) && q.atoms[atoms[j]].schema.contains(v));
            if share {
                let (ri, rj) = (find(&mut comp, i), find(&mut comp, j));
                if ri != rj {
                    comp[ri] = rj;
                }
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut root_of: Vec<(usize, usize)> = Vec::new(); // (root, group idx)
    for (i, &atom) in atoms.iter().enumerate().take(n) {
        let r = find(&mut comp, i);
        match root_of.iter().find(|(rr, _)| *rr == r) {
            Some(&(_, g)) => groups[g].push(atom),
            None => {
                root_of.push((r, groups.len()));
                groups.push(vec![atom]);
            }
        }
    }
    groups
}

/// Incremental builder for manual variable orders (Ex 4.14-style trees).
#[derive(Default)]
pub struct VarOrderBuilder {
    nodes: Vec<Node>,
}

impl VarOrderBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        VarOrderBuilder { nodes: Vec::new() }
    }

    /// Add an atom leaf for atom index `i`.
    pub fn atom(&mut self, i: usize) -> NodeId {
        self.nodes.push(Node::Atom { atom: i });
        self.nodes.len() - 1
    }

    /// Add a variable node over `children`. Dependency sets are computed
    /// by [`VarOrderBuilder::finish`].
    pub fn var(&mut self, var: Sym, children: Vec<NodeId>) -> NodeId {
        self.nodes.push(Node::Var {
            var,
            dep: Schema::empty(),
            children,
        });
        self.nodes.len() - 1
    }

    /// Finish with the given roots, validating against the query.
    pub fn finish(self, roots: Vec<NodeId>, q: &Query) -> Result<VarOrder, VarOrderError> {
        VarOrder {
            nodes: self.nodes,
            roots,
        }
        .validate_and_finish(q)
    }
}

/// Exhaustive search for a variable order under which (a) every atom's
/// schema is an ancestor chain, (b) free variables are on top, and (c) all
/// dynamic atoms enjoy constant-time updates. Returns the first such order.
///
/// This decides the engine-level tractability of the mixed static-dynamic
/// setting (Sec. 4.5) for small queries (≤ 8 variables; the search is over
/// all parent functions, O((n+1)^n) with early pruning).
pub fn find_tractable_order(q: &Query) -> Option<VarOrder> {
    let vars: Vec<Sym> = q.variables().vars().to_vec();
    let n = vars.len();
    assert!(n <= 8, "find_tractable_order supports at most 8 variables");
    // parent[i] = n means root.
    let mut parent = vec![n; n];
    search_orders(q, &vars, &mut parent, 0)
}

fn search_orders(q: &Query, vars: &[Sym], parent: &mut Vec<usize>, i: usize) -> Option<VarOrder> {
    let n = vars.len();
    if i == n {
        return try_build_order(q, vars, parent);
    }
    for p in 0..=n {
        if p == i {
            continue;
        }
        // Cycle check: follow already-assigned parents from p; indices > i
        // are unassigned (still n) and cannot close a cycle.
        let mut cur = p;
        let mut cyc = false;
        while cur != n {
            if cur == i {
                cyc = true;
                break;
            }
            if cur > i {
                break;
            }
            cur = parent[cur];
        }
        if cyc {
            continue;
        }
        parent[i] = p;
        if let Some(v) = search_orders(q, vars, parent, i + 1) {
            return Some(v);
        }
    }
    parent[i] = n;
    None
}

fn try_build_order(q: &Query, vars: &[Sym], parent: &[usize]) -> Option<VarOrder> {
    let n = vars.len();
    // Reject cyclic parent functions.
    for start in 0..n {
        let mut cur = start;
        let mut steps = 0;
        while parent[cur] != n {
            cur = parent[cur];
            steps += 1;
            if steps > n {
                return None;
            }
        }
    }
    // Build nodes.
    let mut b = VarOrderBuilder::new();
    let mut var_node: Vec<NodeId> = Vec::with_capacity(n);
    for &v in vars {
        var_node.push(b.var(v, vec![]));
    }
    // Attach atoms under their lowest variable: the schema variable all of
    // whose other schema variables are its ancestors.
    let anc_of = |i: usize| -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = i;
        while parent[cur] != n {
            cur = parent[cur];
            out.push(cur);
        }
        out
    };
    let mut atom_parent: Vec<usize> = Vec::with_capacity(q.atoms.len());
    for atom in &q.atoms {
        let idxs: Vec<usize> = atom
            .schema
            .vars()
            .iter()
            .map(|v| vars.iter().position(|w| w == v).unwrap())
            .collect();
        let lowest = idxs.iter().copied().find(|&i| {
            let anc = anc_of(i);
            idxs.iter().all(|&j| j == i || anc.contains(&j))
        })?;
        atom_parent.push(lowest);
    }
    #[allow(clippy::needless_range_loop)]
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (ai, &p) in atom_parent.iter().enumerate() {
        let leaf = b.atom(ai);
        children[p].push(leaf);
    }
    for i in 0..n {
        if parent[i] != n {
            children[parent[i]].push(var_node[i]);
        }
    }
    // Assign children; rebuild the builder's nodes with children attached.
    let mut nodes = b.nodes;
    for i in 0..n {
        if let Node::Var { children: c, .. } = &mut nodes[var_node[i]] {
            *c = std::mem::take(&mut children[i]);
        }
    }
    let roots: Vec<NodeId> = (0..n)
        .filter(|&i| parent[i] == n)
        .map(|i| var_node[i])
        .collect();
    let vo = VarOrder { nodes, roots }.validate_and_finish(q).ok()?;
    if vo.free_top(q) && vo.supports_constant_updates(q) {
        Some(vo)
    } else {
        None
    }
}

/// Whether the query is tractable in the mixed static-dynamic setting:
/// some variable order gives constant-time updates for all dynamic atoms
/// and constant-delay enumeration. Coincides with q-hierarchy when all
/// atoms are dynamic (Sec. 4.5: strict superset of q-hierarchical).
pub fn is_tractable_static_dynamic(q: &Query) -> bool {
    find_tractable_order(q).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;
    use crate::hierarchy::is_q_hierarchical;
    use ivm_data::{sym, vars};

    /// Fig 3: Q(Y,X,Z) = R(Y,X)·S(Y,Z) — canonical order has Y on top with
    /// X and Z below, R under X, S under Z, dep(X) = dep(Z) = {Y}.
    #[test]
    fn canonical_fig3() {
        let [x, y, z] = vars(["vo_X", "vo_Y", "vo_Z"]);
        let q = Query::new(
            "vo_fig3",
            [y, x, z],
            vec![
                Atom::new(sym("vo_R"), [y, x]),
                Atom::new(sym("vo_S"), [y, z]),
            ],
        );
        let vo = VarOrder::canonical(&q).unwrap();
        assert_eq!(vo.roots.len(), 1);
        let root = vo.roots[0];
        assert_eq!(vo.var_of(root), Some(y));
        let kids = vo.children_of(root);
        assert_eq!(kids.len(), 2);
        for &k in kids {
            let v = vo.var_of(k).unwrap();
            assert!(v == x || v == z);
            assert_eq!(vo.dep_of(k), &Schema::from([y]));
            assert_eq!(vo.children_of(k).len(), 1);
        }
        assert!(vo.free_top(&q));
        assert!(vo.supports_constant_updates(&q));
    }

    /// Non-hierarchical queries are rejected.
    #[test]
    fn canonical_rejects_non_hierarchical() {
        let [x, y] = vars(["vo_X2", "vo_Y2"]);
        let q = Query::new(
            "vo_nh",
            [],
            vec![
                Atom::new(sym("vo_R2"), [x]),
                Atom::new(sym("vo_S2"), [x, y]),
                Atom::new(sym("vo_T2"), [y]),
            ],
        );
        assert_eq!(
            VarOrder::canonical(&q).unwrap_err(),
            VarOrderError::NotHierarchical
        );
    }

    /// Hierarchical-not-q query: canonical order exists, free vars are on
    /// top only if q-hierarchical — here X free sits below bound Y?  No:
    /// free-first applies within a common chain. Q(X) = Σ_Y R(X,Y)·S(Y):
    /// common of {R,S} is {Y} only, so Y is the root and X hangs below —
    /// free_top fails, matching non-q-hierarchy.
    #[test]
    fn hierarchical_not_q_fails_free_top() {
        let [x, y] = vars(["vo_X3", "vo_Y3"]);
        let q = Query::new(
            "vo_hnq",
            [x],
            vec![
                Atom::new(sym("vo_R3"), [x, y]),
                Atom::new(sym("vo_S3"), [y]),
            ],
        );
        assert!(!is_q_hierarchical(&q));
        let vo = VarOrder::canonical(&q).unwrap();
        assert!(!vo.free_top(&q));
    }

    /// Disconnected queries produce a forest.
    #[test]
    fn disconnected_forest() {
        let [a, b] = vars(["vo_A4", "vo_B4"]);
        let q = Query::new(
            "vo_disc",
            [a, b],
            vec![Atom::new(sym("vo_R4"), [a]), Atom::new(sym("vo_S4"), [b])],
        );
        let vo = VarOrder::canonical(&q).unwrap();
        assert_eq!(vo.roots.len(), 2);
    }

    /// Ex 4.14: manual tree for Q(A,B,C) = Σ_D R(A,D)·S(A,B)·T(B,C) with
    /// static T. Constant updates for R and S; T would be linear.
    #[test]
    fn ex414_manual_tree() {
        let [a, b, c, d] = vars(["vo_A5", "vo_B5", "vo_C5", "vo_D5"]);
        let q = Query::new(
            "vo_ex414",
            [a, b, c],
            vec![
                Atom::new(sym("vo_R5"), [a, d]),
                Atom::new(sym("vo_S5"), [a, b]),
                Atom::new_static(sym("vo_T5"), [b, c]),
            ],
        );
        let mut bld = VarOrderBuilder::new();
        let r_leaf = bld.atom(0);
        let s_leaf = bld.atom(1);
        let t_leaf = bld.atom(2);
        let d_node = bld.var(d, vec![r_leaf]);
        let c_node = bld.var(c, vec![t_leaf]);
        let b_node = bld.var(b, vec![s_leaf, c_node]);
        let a_node = bld.var(a, vec![d_node, b_node]);
        let vo = bld.finish(vec![a_node], &q).unwrap();

        assert_eq!(vo.dep_of(d_node), &Schema::from([a]));
        assert_eq!(vo.dep_of(b_node), &Schema::from([a]));
        assert_eq!(vo.dep_of(c_node), &Schema::from([b]));

        let cu = vo.constant_update_atoms(&q);
        assert!(cu[0], "R updates are constant");
        assert!(cu[1], "S updates are constant");
        assert!(!cu[2], "T updates would be linear (dep(B)={{A}} ⊄ {{B,C}})");
        assert!(vo.supports_constant_updates(&q), "T is static");
        // D is bound below free A — bound-below-free is fine; free-top
        // requires no bound var ABOVE a free one.
        assert!(vo.free_top(&q));
    }

    /// The static-dynamic search finds the Ex 4.14 tree automatically and
    /// rejects the all-dynamic version.
    #[test]
    fn static_dynamic_search() {
        let [a, b, c, d] = vars(["vo_A6", "vo_B6", "vo_C6", "vo_D6"]);
        let mk = |t_dynamic: bool| {
            Query::new(
                if t_dynamic {
                    "vo_sd_dyn"
                } else {
                    "vo_sd_static"
                },
                [a, b, c],
                vec![
                    Atom::new(sym("vo_R6"), [a, d]),
                    Atom::new(sym("vo_S6"), [a, b]),
                    if t_dynamic {
                        Atom::new(sym("vo_T6"), [b, c])
                    } else {
                        Atom::new_static(sym("vo_T6"), [b, c])
                    },
                ],
            )
        };
        assert!(is_tractable_static_dynamic(&mk(false)));
        assert!(!is_tractable_static_dynamic(&mk(true)));
    }

    /// With all atoms dynamic, static-dynamic tractability coincides with
    /// q-hierarchy on the paper's examples.
    #[test]
    fn all_dynamic_matches_q_hierarchical() {
        let [x, y, z] = vars(["vo_X7", "vo_Y7", "vo_Z7"]);
        let qh = Query::new(
            "vo_qh7",
            [y, x, z],
            vec![
                Atom::new(sym("vo_R7"), [y, x]),
                Atom::new(sym("vo_S7"), [y, z]),
            ],
        );
        assert!(is_q_hierarchical(&qh));
        assert!(is_tractable_static_dynamic(&qh));

        let nqh = Query::new(
            "vo_nqh7",
            [x],
            vec![
                Atom::new(sym("vo_R8"), [x, y]),
                Atom::new(sym("vo_S8"), [y]),
            ],
        );
        assert!(!is_q_hierarchical(&nqh));
        assert!(!is_tractable_static_dynamic(&nqh));
    }

    /// Validation rejects atoms whose schema is off-path.
    #[test]
    fn validation_rejects_off_path_atom() {
        let [a, b] = vars(["vo_A9", "vo_B9"]);
        let q = Query::new("vo_bad9", [a, b], vec![Atom::new(sym("vo_R9"), [a, b])]);
        let mut bld = VarOrderBuilder::new();
        let leaf = bld.atom(0);
        // Hang R(A,B) under A only, with B elsewhere: invalid.
        let a_node = bld.var(a, vec![leaf]);
        let b_node = bld.var(b, vec![]);
        let err = bld.finish(vec![a_node, b_node], &q).unwrap_err();
        assert!(matches!(
            err,
            VarOrderError::AtomNotOnPath(0) | VarOrderError::Malformed(_)
        ));
    }
}
