//! Conjunctive queries with aggregates and the syntactic analyses behind
//! the IVM dichotomies of the paper.
//!
//! The analyses decide, in time polynomial in the query size, which
//! maintenance strategy the engines in `ivm-core` may use:
//!
//! | Analysis | Paper | Decides |
//! |---|---|---|
//! | [`hierarchy::is_q_hierarchical`] | Thm 4.1 | O(1) update + O(1) delay |
//! | [`acyclic::is_acyclic`] | Sec 4.6 | amortized O(1) insert-only |
//! | [`cqap::is_tractable_cqap`] | Thm 4.8 | O(1) update + O(1) access |
//! | [`fd::reduct_is_q_hierarchical`] | Thm 4.11 | O(1) under FDs |
//! | [`varorder::is_tractable_static_dynamic`] | Sec 4.5 | O(1) w/ static relations |
//! | [`cascade::rewrite_with`] | Sec 4.2 | piggybacked maintenance |

pub mod acyclic;
pub mod ast;
pub mod cascade;
pub mod cqap;
pub mod examples;
pub mod fd;
pub mod hierarchy;
pub mod tpch;
pub mod varorder;

pub use ast::{Atom, Query};
pub use cqap::{fracture, is_tractable_cqap, Fracture};
pub use fd::{closure, sigma_reduct, Fd};
pub use hierarchy::{is_free_dominant, is_hierarchical, is_input_dominant, is_q_hierarchical};
pub use varorder::{Node, NodeId, VarOrder, VarOrderBuilder, VarOrderError};
