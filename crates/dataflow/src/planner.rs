//! Lowering a conjunctive query onto a delta-dataflow DAG.
//!
//! Any `ivm_query::Query` — q-hierarchical or not, acyclic or *cyclic*,
//! self-join or not — lowers to a left-deep chain of binary
//! [`DeltaJoin`](crate::Dataflow::add_join) nodes in atom order, one
//! [`Source`](crate::Dataflow::add_source) per atom (a base relation
//! appearing in k atoms feeds k sources, which is how self-joins like the
//! triangle query propagate one update through every occurrence), early
//! marginalization of variables no later atom or the head needs, and a
//! final [`GroupAggregate`](crate::Dataflow::add_aggregate) onto the free
//! variables.
//!
//! This is the generic-fallback counterpart to the specialized engines in
//! `ivm-core`: no constant-time guarantees, but O(|δQ| + index-probe) work
//! per batch for every conjunctive query with aggregates.

use crate::graph::Dataflow;
use ivm_data::ops::Lift;
use ivm_query::Query;
use ivm_ring::Semiring;

/// Lower `q` to a runnable dataflow with `lift` as the payload lifting.
pub fn lower<R: Semiring>(q: &Query, lift: Lift<R>) -> Dataflow<R> {
    let mut df = Dataflow::new();
    let n = q.atoms.len();
    let mut cur = df.add_source(q.atoms[0].name, q.atoms[0].schema.clone());
    for (i, atom) in q.atoms.iter().enumerate().skip(1) {
        let src = df.add_source(atom.name, atom.schema.clone());
        cur = df.add_join(cur, src);
        // Early marginalization: a variable that is bound and absent from
        // every later atom can be summed out now, shrinking intermediate
        // deltas. The final aggregate handles whatever remains.
        if i + 1 < n {
            let mut needed = q.free.clone();
            for later in &q.atoms[i + 1..] {
                needed = needed.union(&later.schema);
            }
            let keep = df.schema_of(cur).intersect(&needed);
            if keep.arity() < df.schema_of(cur).arity() {
                cur = df.add_aggregate(cur, keep, lift);
            }
        }
    }
    if df.schema_of(cur) != &q.free {
        cur = df.add_aggregate(cur, q.free.clone(), lift);
    }
    df.set_sink(cur);
    df
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::lift_one;
    use ivm_data::{sym, tup, vars, Schema, Update};
    use ivm_query::Atom;

    #[test]
    fn fig3_plan_shape() {
        let q = ivm_query::examples::fig3_query();
        let df: Dataflow<i64> = lower(&q, lift_one);
        let plan = df.describe();
        // Two sources, one join, one final aggregate (reorder/marginalize).
        assert_eq!(plan.matches("Source").count(), 2, "{plan}");
        assert_eq!(plan.matches("DeltaJoin").count(), 1, "{plan}");
    }

    #[test]
    fn triangle_self_join_gets_three_sources() {
        let q = ivm_query::examples::triangle_count();
        let df: Dataflow<i64> = lower(&q, lift_one);
        let plan = df.describe();
        assert_eq!(plan.matches("Source").count(), 3, "{plan}");
        assert_eq!(plan.matches("DeltaJoin").count(), 2, "{plan}");
    }

    #[test]
    fn early_marginalization_prunes_wide_intermediates() {
        // Q(a) = R(a,b) S(b,c) T(a,d): after R⋈S, b and c are dead (no
        // later atom uses them, a is the only free variable kept).
        let [a, b, c, d] = vars(["pl_A", "pl_B", "pl_C", "pl_D"]);
        let q = Query::new(
            "pl_chain",
            [a],
            vec![
                Atom::new(sym("pl_R"), [a, b]),
                Atom::new(sym("pl_S"), [b, c]),
                Atom::new(sym("pl_T"), [a, d]),
            ],
        );
        let mut df: Dataflow<i64> = lower(&q, lift_one);
        let plan = df.describe();
        assert!(
            plan.contains("GroupAggregate[pl_A] "),
            "expected early aggregate onto [pl_A]:\n{plan}"
        );
        // And it still computes the right answer.
        df.apply_batch(&[
            Update::insert(sym("pl_R"), tup![1i64, 2i64]),
            Update::insert(sym("pl_S"), tup![2i64, 3i64]),
            Update::insert(sym("pl_T"), tup![1i64, 9i64]),
        ])
        .unwrap();
        assert_eq!(df.output().get(&tup![1i64]), 1);
    }

    #[test]
    fn single_atom_query_lowered() {
        let [x, y] = vars(["pl_X1", "pl_Y1"]);
        let q = Query::new("pl_single", [x], vec![Atom::new(sym("pl_U"), [x, y])]);
        let mut df: Dataflow<i64> = lower(&q, lift_one);
        df.apply_batch(&[
            Update::insert(sym("pl_U"), tup![1i64, 5i64]),
            Update::insert(sym("pl_U"), tup![1i64, 6i64]),
        ])
        .unwrap();
        assert_eq!(df.output().get(&tup![1i64]), 2);
    }

    #[test]
    fn boolean_query_aggregates_to_empty_tuple() {
        let [x, y] = vars(["pl_X2", "pl_Y2"]);
        let q = Query::new("pl_bool", [], vec![Atom::new(sym("pl_V"), [x, y])]);
        let mut df: Dataflow<i64> = lower(&q, lift_one);
        df.apply_batch(&[
            Update::insert(sym("pl_V"), tup![1i64, 5i64]),
            Update::insert(sym("pl_V"), tup![2i64, 5i64]),
        ])
        .unwrap();
        assert_eq!(df.output().get(&ivm_data::Tuple::empty()), 2);
        assert_eq!(df.schema_of(df.node_count() - 1), &Schema::empty());
    }
}
