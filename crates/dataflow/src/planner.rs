//! Lowering a conjunctive query onto a delta-dataflow DAG.
//!
//! Any `ivm_query::Query` — q-hierarchical or not, acyclic or *cyclic*,
//! self-join or not — lowers to a runnable dataflow. The planner splits on
//! the hypergraph's shape, decided by the GYO reduction shared with
//! `ivm_query::acyclic` (the same check `ivm_core::acyclic::join_tree`
//! routes through):
//!
//! * **α-acyclic** queries keep the left-deep chain of binary
//!   [`DeltaJoin`](crate::Dataflow::add_join) nodes — one
//!   [`Source`](crate::Dataflow::add_source) per atom occurrence, early
//!   marginalization of variables no later atom or the head needs, and a
//!   final [`GroupAggregate`](crate::Dataflow::add_aggregate) onto the
//!   free variables. Atom order comes from [`cost::atom_order`] (smallest
//!   relation first, connected extension, deterministic tie-breaks)
//!   instead of the old syntactic order.
//! * **Cyclic** queries (triangle, 4-cycle, Loomis–Whitney) lower to a
//!   single worst-case-optimal
//!   [`MultiwayJoin`](crate::Dataflow::add_multiway_join) node — one
//!   source per *distinct* relation (self-join occurrences share state),
//!   a cost-based variable order from [`cost::variable_order`], and the
//!   same final aggregate. The left-deep chain would materialize binary
//!   intermediate deltas that can dwarf the output (the Sec. 3.3 blow-up
//!   that Kara et al. and leapfrog-style WCOJ algorithms avoid).
//!
//! [`JoinStrategy`] overrides the split — the property-test harness runs
//! the same query through both plans and cross-checks them.
//!
//! This is the generic-fallback counterpart to the specialized engines in
//! `ivm-core`: no constant-time guarantees, but O(|δQ| + index-probe) work
//! per batch for every conjunctive query with aggregates.

use crate::cost::{self, Cardinalities};
use crate::graph::Dataflow;
use ivm_data::ops::Lift;
use ivm_data::FxHashMap;
use ivm_query::acyclic::is_acyclic;
use ivm_query::Query;
use ivm_ring::Semiring;

/// Which join plan to lower to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Split on the hypergraph: left-deep when α-acyclic, multiway when
    /// cyclic.
    #[default]
    Auto,
    /// Force the left-deep binary `DeltaJoin` chain.
    LeftDeep,
    /// Force the single worst-case-optimal `MultiwayJoin` node.
    Multiway,
}

impl JoinStrategy {
    /// A stable one-byte tag for persistence (snapshot files outlive the
    /// process, so `as u8` on the enum ordering would be too fragile).
    pub fn tag(self) -> u8 {
        match self {
            JoinStrategy::Auto => 0,
            JoinStrategy::LeftDeep => 1,
            JoinStrategy::Multiway => 2,
        }
    }

    /// Decode a [`JoinStrategy::tag`]; `None` for unknown bytes (a
    /// corrupt or future-version snapshot must not panic).
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(JoinStrategy::Auto),
            1 => Some(JoinStrategy::LeftDeep),
            2 => Some(JoinStrategy::Multiway),
            _ => None,
        }
    }
}

/// Lower `q` with the default strategy and no statistics.
pub fn lower<R: Semiring>(q: &Query, lift: Lift<R>) -> Dataflow<R> {
    lower_with(q, lift, JoinStrategy::Auto, &Cardinalities::none())
}

/// The concrete plan `strategy` resolves to for `q`: [`JoinStrategy::Auto`]
/// splits on the GYO acyclicity check, the forced variants pass through.
/// Never returns `Auto` — this is the single place the split is decided,
/// shared by the lowering below and by callers (the session layer) that
/// need to *report* which plan a dataflow actually runs.
pub fn resolve_strategy(q: &Query, strategy: JoinStrategy) -> JoinStrategy {
    match strategy {
        JoinStrategy::Auto => {
            if is_acyclic(q) {
                JoinStrategy::LeftDeep
            } else {
                JoinStrategy::Multiway
            }
        }
        forced => forced,
    }
}

/// Lower `q` to a runnable dataflow with `lift` as the payload lifting,
/// choosing the join plan per `strategy` and ordering it by `cards`.
pub fn lower_with<R: Semiring>(
    q: &Query,
    lift: Lift<R>,
    strategy: JoinStrategy,
    cards: &Cardinalities,
) -> Dataflow<R> {
    match resolve_strategy(q, strategy) {
        JoinStrategy::Multiway => lower_multiway(q, lift, cards),
        _ => lower_left_deep(q, lift, cards),
    }
}

/// The left-deep chain over `cost::atom_order`.
fn lower_left_deep<R: Semiring>(q: &Query, lift: Lift<R>, cards: &Cardinalities) -> Dataflow<R> {
    let mut df = Dataflow::new();
    let order = cost::atom_order(q, cards);
    let n = order.len();
    let first = &q.atoms[order[0]];
    let mut cur = df.add_source(first.name, first.schema.clone());
    for (k, &ai) in order.iter().enumerate().skip(1) {
        let atom = &q.atoms[ai];
        let src = df.add_source(atom.name, atom.schema.clone());
        cur = df.add_join(cur, src);
        // Early marginalization: a variable that is bound and absent from
        // every later atom can be summed out now, shrinking intermediate
        // deltas. The final aggregate handles whatever remains.
        if k + 1 < n {
            let mut needed = q.free.clone();
            for &later in &order[k + 1..] {
                needed = needed.union(&q.atoms[later].schema);
            }
            let keep = df.schema_of(cur).intersect(&needed);
            if keep.arity() < df.schema_of(cur).arity() {
                cur = df.add_aggregate(cur, keep, lift);
            }
        }
    }
    finish(df, cur, q, lift)
}

/// One `MultiwayJoin` node over one source per distinct relation.
fn lower_multiway<R: Semiring>(q: &Query, lift: Lift<R>, cards: &Cardinalities) -> Dataflow<R> {
    let mut df = Dataflow::new();
    let mut slot_of: FxHashMap<ivm_data::Sym, usize> = FxHashMap::default();
    let mut inputs = Vec::new();
    let mut atoms = Vec::with_capacity(q.atoms.len());
    for atom in &q.atoms {
        let slot = *slot_of.entry(atom.name).or_insert_with(|| {
            inputs.push(df.add_source(atom.name, atom.schema.clone()));
            inputs.len() - 1
        });
        atoms.push((slot, atom.schema.clone()));
    }
    let var_order = cost::variable_order(q, cards);
    let join = df.add_multiway_join(inputs, atoms, var_order);
    finish(df, join, q, lift)
}

/// Aggregate onto the free variables when the join schema differs, then
/// declare the sink.
fn finish<R: Semiring>(
    mut df: Dataflow<R>,
    mut cur: crate::graph::NodeId,
    q: &Query,
    lift: Lift<R>,
) -> Dataflow<R> {
    if df.schema_of(cur) != &q.free {
        cur = df.add_aggregate(cur, q.free.clone(), lift);
    }
    df.set_sink(cur);
    df
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::lift_one;
    use ivm_data::{sym, tup, vars, Schema, Update};
    use ivm_query::Atom;

    #[test]
    fn fig3_plan_shape() {
        let q = ivm_query::examples::fig3_query();
        let df: Dataflow<i64> = lower(&q, lift_one);
        let plan = df.describe();
        // Two sources, one join, one final aggregate (reorder/marginalize).
        assert_eq!(plan.matches("Source").count(), 2, "{plan}");
        assert_eq!(plan.matches("DeltaJoin").count(), 1, "{plan}");
    }

    #[test]
    fn cyclic_triangle_lowers_to_one_multiway_node() {
        let q = ivm_query::examples::triangle_count();
        let df: Dataflow<i64> = lower(&q, lift_one);
        let plan = df.describe();
        assert_eq!(plan.matches("Source").count(), 3, "{plan}");
        assert_eq!(plan.matches("MultiwayJoin(atoms=3)").count(), 1, "{plan}");
        assert_eq!(plan.matches("DeltaJoin").count(), 0, "{plan}");
    }

    #[test]
    fn triangle_self_join_shares_one_source() {
        // One edge relation in three atoms: the multiway plan reads it
        // through a single source (shared indexes), unlike the left-deep
        // plan's one source per occurrence.
        let [a, b, c] = vars(["pl_MA", "pl_MB", "pl_MC"]);
        let e = sym("pl_ME");
        let q = ivm_query::Query::new(
            "pl_mtri",
            [],
            vec![
                Atom::new(e, [a, b]),
                Atom::new(e, [b, c]),
                Atom::new(e, [c, a]),
            ],
        );
        let df: Dataflow<i64> = lower(&q, lift_one);
        let plan = df.describe();
        assert_eq!(plan.matches("Source").count(), 1, "{plan}");
        assert_eq!(plan.matches("MultiwayJoin(atoms=3)").count(), 1, "{plan}");

        let forced: Dataflow<i64> =
            lower_with(&q, lift_one, JoinStrategy::LeftDeep, &Cardinalities::none());
        assert_eq!(forced.describe().matches("Source").count(), 3);
    }

    #[test]
    fn strategy_override_beats_auto() {
        // Acyclic star forced onto the multiway path still lowers…
        let q = ivm_query::examples::fig3_query();
        let df: Dataflow<i64> =
            lower_with(&q, lift_one, JoinStrategy::Multiway, &Cardinalities::none());
        assert!(df.describe().contains("MultiwayJoin"), "{}", df.describe());
        // …and the cyclic triangle forced left-deep keeps binary joins.
        let tri = ivm_query::examples::triangle_count();
        let df: Dataflow<i64> = lower_with(
            &tri,
            lift_one,
            JoinStrategy::LeftDeep,
            &Cardinalities::none(),
        );
        assert!(df.describe().contains("DeltaJoin"), "{}", df.describe());
    }

    #[test]
    fn multiway_plan_computes_triangle_count() {
        let q = ivm_query::examples::triangle_count();
        let mut df: Dataflow<i64> = lower(&q, lift_one);
        let (rn, sn, tn) = (sym("tri_R"), sym("tri_S"), sym("tri_T"));
        df.apply_batch(&[
            Update::insert(rn, tup![1i64, 2i64]),
            Update::insert(sn, tup![2i64, 3i64]),
            Update::insert(tn, tup![3i64, 1i64]),
            Update::insert(rn, tup![5i64, 6i64]),
        ])
        .unwrap();
        assert_eq!(df.output().get(&ivm_data::Tuple::empty()), 1);
        assert_eq!(
            df.stats().binary_join_tuples,
            0,
            "multiway plan must materialize no binary intermediates"
        );
        df.apply_batch(&[Update::delete(sn, tup![2i64, 3i64])])
            .unwrap();
        assert!(df.output().is_empty());
    }

    #[test]
    fn cost_order_prefers_small_relations_in_left_deep_plans() {
        let [a, b, c] = vars(["pl_cA", "pl_cB", "pl_cC"]);
        let q = ivm_query::Query::new(
            "pl_cost",
            [a, c],
            vec![
                Atom::new(sym("pl_cR"), [a, b]),
                Atom::new(sym("pl_cS"), [b, c]),
            ],
        );
        let mut cards = Cardinalities::none();
        cards.set(sym("pl_cR"), 1_000).set(sym("pl_cS"), 2);
        let df: Dataflow<i64> = lower_with(&q, lift_one, JoinStrategy::LeftDeep, &cards);
        let plan = df.describe();
        let s_pos = plan.find("Source(pl_cS)").expect("S source in plan");
        let r_pos = plan.find("Source(pl_cR)").expect("R source in plan");
        assert!(
            s_pos < r_pos,
            "smaller relation should open the chain:\n{plan}"
        );
    }

    #[test]
    fn early_marginalization_prunes_wide_intermediates() {
        // Q(a) = R(a,b) S(b,c) T(a,d): after R⋈S, b and c are dead (no
        // later atom uses them, a is the only free variable kept).
        let [a, b, c, d] = vars(["pl_A", "pl_B", "pl_C", "pl_D"]);
        let q = Query::new(
            "pl_chain",
            [a],
            vec![
                Atom::new(sym("pl_R"), [a, b]),
                Atom::new(sym("pl_S"), [b, c]),
                Atom::new(sym("pl_T"), [a, d]),
            ],
        );
        let mut df: Dataflow<i64> = lower(&q, lift_one);
        let plan = df.describe();
        assert!(
            plan.contains("GroupAggregate[pl_A] "),
            "expected early aggregate onto [pl_A]:\n{plan}"
        );
        // And it still computes the right answer.
        df.apply_batch(&[
            Update::insert(sym("pl_R"), tup![1i64, 2i64]),
            Update::insert(sym("pl_S"), tup![2i64, 3i64]),
            Update::insert(sym("pl_T"), tup![1i64, 9i64]),
        ])
        .unwrap();
        assert_eq!(df.output().get(&tup![1i64]), 1);
    }

    #[test]
    fn single_atom_query_lowered() {
        let [x, y] = vars(["pl_X1", "pl_Y1"]);
        let q = Query::new("pl_single", [x], vec![Atom::new(sym("pl_U"), [x, y])]);
        let mut df: Dataflow<i64> = lower(&q, lift_one);
        df.apply_batch(&[
            Update::insert(sym("pl_U"), tup![1i64, 5i64]),
            Update::insert(sym("pl_U"), tup![1i64, 6i64]),
        ])
        .unwrap();
        assert_eq!(df.output().get(&tup![1i64]), 2);
    }

    #[test]
    fn boolean_query_aggregates_to_empty_tuple() {
        let [x, y] = vars(["pl_X2", "pl_Y2"]);
        let q = Query::new("pl_bool", [], vec![Atom::new(sym("pl_V"), [x, y])]);
        let mut df: Dataflow<i64> = lower(&q, lift_one);
        df.apply_batch(&[
            Update::insert(sym("pl_V"), tup![1i64, 5i64]),
            Update::insert(sym("pl_V"), tup![2i64, 5i64]),
        ])
        .unwrap();
        assert_eq!(df.output().get(&ivm_data::Tuple::empty()), 2);
        assert_eq!(df.schema_of(df.node_count() - 1), &Schema::empty());
    }
}
