//! The delta-dataflow operator DAG.
//!
//! A [`Dataflow`] is a topologically ordered DAG of operators over one ring
//! `R`. Each [`apply_batch`](Dataflow::apply_batch) consolidates the batch
//! (see [`DeltaBatch`]), then pushes one delta relation through every node
//! in topological order. Operators are *linear* in the ring sense — union,
//! filter, map, and aggregation commute with ⊎ — except the join, which
//! uses the semi-naive bilinear rule
//!
//! ```text
//! δ(L ⋈ R) = δL ⋈ R  ⊎  L ⋈ δR  ⊎  δL ⋈ δR
//!          = δL ⋈ (R ⊎ δR)  ⊎  L ⋈ δR
//! ```
//!
//! materialized as two probes against hash indexes (the right index is
//! advanced to `R ⊎ δR` before the left delta probes it). This is the
//! delta-query architecture of Koch et al.'s collection programming and of
//! DBSP, specialized to finite relations over rings; because payloads live
//! in a ring, batches commute and consolidation before propagation is
//! always sound.

use crate::batch::DeltaBatch;
use crate::multiway::{MultiwayState, StoreHub};
use ivm_core::EngineError;
use ivm_data::ops::{aggregate, Lift};
use ivm_data::{GroupedIndex, Relation, Schema, Sym, Tuple, Update, Value};
use ivm_obs::{Counter, Histogram, LabelId, MetricsRegistry, Tracer};
use ivm_ring::Semiring;
use std::sync::Arc;
use std::time::Instant;

/// Index of a node within its [`Dataflow`].
pub type NodeId = usize;

/// Where a join output column's value comes from when probing with a
/// right-side delta tuple (key and residual come from the left index).
#[derive(Clone, Copy, Debug)]
enum ColSrc {
    /// Position within the join-key tuple.
    Key(usize),
    /// Position within a left-index residual tuple.
    LeftResidual(usize),
    /// Position within the probing right tuple.
    RightTuple(usize),
}

/// State and precomputed plumbing of a binary delta join.
struct JoinState<R> {
    /// Left input, indexed by the shared variables.
    left: GroupedIndex<R>,
    /// Right input, indexed by the shared variables.
    right: GroupedIndex<R>,
    /// Positions of the shared variables within the left schema.
    left_key_pos: Vec<usize>,
    /// Positions of the shared variables within the right schema.
    right_key_pos: Vec<usize>,
    /// Output assembly plan for right-delta probes into the left index.
    right_probe_plan: Vec<ColSrc>,
}

/// One dataflow operator.
enum Operator<R> {
    /// Injects the consolidated delta of one base relation.
    Source {
        /// The base relation this node listens to.
        relation: Sym,
    },
    /// Keeps tuples satisfying a predicate (linear: payloads untouched).
    Filter {
        /// Tuple predicate (`Send + Sync` so whole dataflows move across
        /// worker threads in the sharded engine).
        predicate: Arc<dyn Fn(&Tuple) -> bool + Send + Sync>,
    },
    /// Rewrites tuples (linear: same-image tuples merge by ring addition).
    Map {
        /// Tuple transform; must produce tuples of the node's schema.
        f: Arc<dyn Fn(&Tuple) -> Tuple + Send + Sync>,
    },
    /// Semi-naive hash join of two inputs on their shared variables
    /// (boxed: the index state dwarfs the other variants).
    DeltaJoin(Box<JoinState<R>>),
    /// Worst-case-optimal multiway join over N atoms: attribute-at-a-time
    /// intersection search over shared hash-trie indexes, with delta terms
    /// seeded from the changed tuples (see [`crate::multiway`]). Unlike a
    /// chain of `DeltaJoin`s it materializes no binary intermediates.
    MultiwayJoin(Box<MultiwayState<R>>),
    /// Marginalizes every non-group-by variable with a lifting function
    /// and reorders columns to the group-by schema (linear).
    GroupAggregate {
        /// Output (group-by) schema.
        group_by: Schema,
        /// Lifting `g_X` applied to each marginalized variable.
        lift: Lift<R>,
    },
}

/// A node: an operator, its inputs, and its output schema.
struct Node<R> {
    op: Operator<R>,
    inputs: Vec<NodeId>,
    schema: Schema,
}

/// Counters exposed for benchmarking and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DataflowStats {
    /// Batches propagated.
    pub batches: u64,
    /// Single-tuple updates received (before consolidation).
    pub updates_in: u64,
    /// Consolidated source deltas actually propagated.
    pub deltas_in: u64,
    /// Delta tuples that reached the sink.
    pub output_delta_tuples: u64,
    /// Tuples emitted by binary `DeltaJoin` nodes — the materialized
    /// intermediates a worst-case-optimal plan avoids. Zero for a plan
    /// whose only join is a `MultiwayJoin`.
    pub binary_join_tuples: u64,
    /// Delta tuples that seeded a multiway variable-elimination search.
    pub multiway_seeds: u64,
    /// Index and membership probes performed by multiway searches — the
    /// machine-independent work measure of the WCOJ path.
    pub multiway_probes: u64,
    /// Candidate values enumerated by multiway intersection steps (the
    /// width of the leapfrog-style search frontier; each candidate then
    /// costs `multiway_probes` membership checks against the other
    /// atoms).
    pub multiway_intersections: u64,
}

impl DataflowStats {
    /// Machine-independent propagation-work measure: materialized binary
    /// intermediates + multiway probes + emitted output deltas. The
    /// trade-off bench scales this against N to estimate empirical
    /// update-cost exponents the way the specialized kernels do with
    /// their own `work()` counters.
    pub fn work(&self) -> u64 {
        self.binary_join_tuples + self.multiway_probes + self.output_delta_tuples
    }

    /// Fold `other` into `self`, field-wise. Used by [`DataflowEngine`]
    /// to carry counters across re-plans and by the sharded engine to
    /// aggregate per-shard counters into one fleet-wide view.
    ///
    /// [`DataflowEngine`]: crate::DataflowEngine
    pub fn merge(&mut self, other: &DataflowStats) {
        let DataflowStats {
            batches,
            updates_in,
            deltas_in,
            output_delta_tuples,
            binary_join_tuples,
            multiway_seeds,
            multiway_probes,
            multiway_intersections,
        } = other;
        self.batches += batches;
        self.updates_in += updates_in;
        self.deltas_in += deltas_in;
        self.output_delta_tuples += output_delta_tuples;
        self.binary_join_tuples += binary_join_tuples;
        self.multiway_seeds += multiway_seeds;
        self.multiway_probes += multiway_probes;
        self.multiway_intersections += multiway_intersections;
    }

    /// [`Self::merge`] by value, for iterator folds.
    pub fn merged(mut self, other: &DataflowStats) -> DataflowStats {
        self.merge(other);
        self
    }

    /// The counter increments since `earlier`, field-wise and saturating.
    /// The replan policy judges *windows* of the stream (counters since
    /// the last replan), not lifetime totals — a plan that blew up early
    /// and was fixed must not keep tripping the trigger forever.
    /// Saturating because a sharded fleet's merged snapshot can lag a
    /// baseline taken mid-settle.
    pub fn since(&self, earlier: &DataflowStats) -> DataflowStats {
        DataflowStats {
            batches: self.batches.saturating_sub(earlier.batches),
            updates_in: self.updates_in.saturating_sub(earlier.updates_in),
            deltas_in: self.deltas_in.saturating_sub(earlier.deltas_in),
            output_delta_tuples: self
                .output_delta_tuples
                .saturating_sub(earlier.output_delta_tuples),
            binary_join_tuples: self
                .binary_join_tuples
                .saturating_sub(earlier.binary_join_tuples),
            multiway_seeds: self.multiway_seeds.saturating_sub(earlier.multiway_seeds),
            multiway_probes: self.multiway_probes.saturating_sub(earlier.multiway_probes),
            multiway_intersections: self
                .multiway_intersections
                .saturating_sub(earlier.multiway_intersections),
        }
    }
}

/// Registry handles of one operator node: cumulative apply time plus
/// delta-in/delta-out tuple counts.
struct OpObs {
    apply_ns: Counter,
    in_tuples: Counter,
    out_tuples: Counter,
    /// Interned trace label (`op.{id}.{kind}`), resolved at attach time
    /// so the hot path records spans without allocating.
    span_label: LabelId,
}

/// Registry handles of a whole dataflow. The counters mirror
/// [`DataflowStats`] (pushed as increments at each batch boundary so the
/// registry stays cumulative across [`Dataflow::reset_stats`]); the
/// per-operator handles are written inline during propagation.
struct GraphObs {
    ops: Vec<OpObs>,
    batch_ns: Histogram,
    batches: Counter,
    updates_in: Counter,
    deltas_in: Counter,
    output_delta_tuples: Counter,
    binary_join_tuples: Counter,
    multiway_seeds: Counter,
    multiway_probes: Counter,
    multiway_intersections: Counter,
    /// The registry's tracer; per-operator spans join whatever epoch
    /// root is ambient on the applying thread.
    tracer: Tracer,
    /// Interned label for the whole-batch span (`engine.apply_batch`).
    batch_label: LabelId,
    /// Stats value already pushed to the registry; the next sync pushes
    /// `stats.since(mirrored)`.
    mirrored: DataflowStats,
}

impl GraphObs {
    /// Push counter increments accumulated since the last sync.
    fn sync(&mut self, stats: &DataflowStats) {
        let d = stats.since(&self.mirrored);
        self.batches.add(d.batches);
        self.updates_in.add(d.updates_in);
        self.deltas_in.add(d.deltas_in);
        self.output_delta_tuples.add(d.output_delta_tuples);
        self.binary_join_tuples.add(d.binary_join_tuples);
        self.multiway_seeds.add(d.multiway_seeds);
        self.multiway_probes.add(d.multiway_probes);
        self.multiway_intersections.add(d.multiway_intersections);
        self.mirrored = *stats;
    }
}

/// A runnable delta-dataflow: operator DAG + materialized output view.
pub struct Dataflow<R> {
    nodes: Vec<Node<R>>,
    source_relations: ivm_data::FxHashSet<Sym>,
    sink: Option<NodeId>,
    output: Relation<R>,
    stats: DataflowStats,
    /// Telemetry handles, present only while a registry is attached.
    /// `None` costs one branch per batch and nothing per tuple.
    obs: Option<GraphObs>,
}

impl<R: Semiring> Dataflow<R> {
    /// An empty dataflow (add nodes, then [`set_sink`](Self::set_sink)).
    pub fn new() -> Self {
        Dataflow {
            nodes: Vec::new(),
            source_relations: ivm_data::FxHashSet::default(),
            sink: None,
            output: Relation::new(Schema::empty()),
            stats: DataflowStats::default(),
            obs: None,
        }
    }

    /// Short lowercase operator label for metric names.
    fn op_label(op: &Operator<R>) -> String {
        match op {
            Operator::Source { relation } => format!("source_{relation}"),
            Operator::Filter { .. } => "filter".to_string(),
            Operator::Map { .. } => "map".to_string(),
            Operator::DeltaJoin(_) => "delta_join".to_string(),
            Operator::MultiwayJoin(_) => "multiway_join".to_string(),
            Operator::GroupAggregate { .. } => "group_aggregate".to_string(),
        }
    }

    /// Attach a metrics registry: every future batch records per-operator
    /// apply time and delta-in/delta-out tuple counts under
    /// `{prefix}.op.{id}.{kind}.*`, a `{prefix}.batch_apply_ns`
    /// histogram, and cumulative [`DataflowStats`] mirrors under
    /// `{prefix}.*`. Counting starts from the *current* state — history
    /// applied before attachment (e.g. preprocessing) is not back-filled.
    /// Attaching again (even to the same registry) just re-resolves the
    /// handles.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry, prefix: &str) {
        let ops = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let kind = Self::op_label(&n.op);
                let base = format!("{prefix}.op.{i}.{kind}");
                OpObs {
                    apply_ns: registry.counter(&format!("{base}.apply_ns")),
                    in_tuples: registry.counter(&format!("{base}.in_tuples")),
                    out_tuples: registry.counter(&format!("{base}.out_tuples")),
                    span_label: registry.tracer().intern(&format!("op.{i}.{kind}")),
                }
            })
            .collect();
        self.obs = Some(GraphObs {
            ops,
            batch_ns: registry.histogram(&format!("{prefix}.batch_apply_ns")),
            batches: registry.counter(&format!("{prefix}.batches")),
            updates_in: registry.counter(&format!("{prefix}.updates_in")),
            deltas_in: registry.counter(&format!("{prefix}.deltas_in")),
            output_delta_tuples: registry.counter(&format!("{prefix}.output_delta_tuples")),
            binary_join_tuples: registry.counter(&format!("{prefix}.binary_join_tuples")),
            multiway_seeds: registry.counter(&format!("{prefix}.multiway_seeds")),
            multiway_probes: registry.counter(&format!("{prefix}.multiway_probes")),
            multiway_intersections: registry.counter(&format!("{prefix}.multiway_intersections")),
            tracer: registry.tracer().clone(),
            batch_label: registry.tracer().intern("engine.apply_batch"),
            mirrored: self.stats,
        });
    }

    /// Drop the registry handles; subsequent batches record nothing.
    pub fn detach_obs(&mut self) {
        self.obs = None;
    }

    fn push_node(&mut self, node: Node<R>) -> NodeId {
        for &i in &node.inputs {
            assert!(
                i < self.nodes.len(),
                "node input {i} must precede it (topological construction)"
            );
        }
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// The output schema of a node.
    pub fn schema_of(&self, id: NodeId) -> &Schema {
        &self.nodes[id].schema
    }

    /// Add a source listening to `relation`, emitting tuples under
    /// `schema` (the atom's variable naming; arity must match the
    /// relation's tuples).
    pub fn add_source(&mut self, relation: Sym, schema: Schema) -> NodeId {
        self.source_relations.insert(relation);
        self.push_node(Node {
            op: Operator::Source { relation },
            inputs: vec![],
            schema,
        })
    }

    /// Add a filter over `input`.
    pub fn add_filter(
        &mut self,
        input: NodeId,
        predicate: impl Fn(&Tuple) -> bool + Send + Sync + 'static,
    ) -> NodeId {
        let schema = self.nodes[input].schema.clone();
        self.push_node(Node {
            op: Operator::Filter {
                predicate: Arc::new(predicate),
            },
            inputs: vec![input],
            schema,
        })
    }

    /// Add a tuple-wise map over `input` producing tuples of `schema`.
    pub fn add_map(
        &mut self,
        input: NodeId,
        schema: Schema,
        f: impl Fn(&Tuple) -> Tuple + Send + Sync + 'static,
    ) -> NodeId {
        self.push_node(Node {
            op: Operator::Map { f: Arc::new(f) },
            inputs: vec![input],
            schema,
        })
    }

    /// Add a projection onto `keep ⊆ input schema` (a [`Self::add_map`]
    /// specialization; projected-together tuples merge by ring addition).
    pub fn add_project(&mut self, input: NodeId, keep: Schema) -> NodeId {
        let positions = self.nodes[input].schema.positions_of(&keep);
        self.add_map(input, keep, move |t| t.project(&positions))
    }

    /// Add a semi-naive hash join of `left` and `right` on their shared
    /// variables. Output schema: left's variables, then right's new ones.
    pub fn add_join(&mut self, left: NodeId, right: NodeId) -> NodeId {
        let lschema = self.nodes[left].schema.clone();
        let rschema = self.nodes[right].schema.clone();
        let common = lschema.intersect(&rschema);
        let out_schema = lschema.union(&rschema);

        let left_residual = lschema.difference(&common);
        let right_probe_plan = out_schema
            .vars()
            .iter()
            .map(|&v| {
                if let Some(p) = common.position(v) {
                    ColSrc::Key(p)
                } else if let Some(p) = left_residual.position(v) {
                    ColSrc::LeftResidual(p)
                } else {
                    ColSrc::RightTuple(rschema.position(v).expect("var must be in an input"))
                }
            })
            .collect();

        let state = JoinState {
            left: GroupedIndex::new(lschema.clone(), common.clone()),
            right: GroupedIndex::new(rschema.clone(), common.clone()),
            left_key_pos: lschema.positions_of(&common),
            right_key_pos: rschema.positions_of(&common),
            right_probe_plan,
        };
        self.push_node(Node {
            op: Operator::DeltaJoin(Box::new(state)),
            inputs: vec![left, right],
            schema: out_schema,
        })
    }

    /// Add a worst-case-optimal multiway join. `inputs` are the distinct
    /// upstream nodes (one per base relation — self-join occurrences share
    /// an input and therefore share indexes); `atoms` pairs each atom
    /// occurrence's slot in `inputs` with its variable schema; `var_order`
    /// is the global elimination order and the node's output schema, and
    /// must cover every atom variable.
    pub fn add_multiway_join(
        &mut self,
        inputs: Vec<NodeId>,
        atoms: Vec<(usize, Schema)>,
        var_order: Schema,
    ) -> NodeId {
        for &(slot, ref schema) in &atoms {
            assert!(slot < inputs.len(), "atom input slot {slot} out of range");
            assert_eq!(
                schema.arity(),
                self.nodes[inputs[slot]].schema.arity(),
                "atom schema arity must match its input"
            );
            assert!(
                schema.subset_of(&var_order),
                "atom schema {schema:?} must be within var order {var_order:?}"
            );
        }
        let state = MultiwayState::new(&atoms, inputs.len(), var_order.clone());
        self.push_node(Node {
            op: Operator::MultiwayJoin(Box::new(state)),
            inputs,
            schema: var_order,
        })
    }

    /// Add an aggregation of `input` onto `group_by`, lifting marginalized
    /// variables with `lift`.
    pub fn add_aggregate(&mut self, input: NodeId, group_by: Schema, lift: Lift<R>) -> NodeId {
        assert!(
            group_by.subset_of(&self.nodes[input].schema),
            "group-by {group_by:?} must be within {:?}",
            self.nodes[input].schema
        );
        self.push_node(Node {
            op: Operator::GroupAggregate {
                group_by: group_by.clone(),
                lift,
            },
            inputs: vec![input],
            schema: group_by,
        })
    }

    /// Declare `id` the sink; its accumulated deltas form [`Self::output`].
    pub fn set_sink(&mut self, id: NodeId) {
        assert!(id < self.nodes.len(), "sink {id} out of range");
        self.sink = Some(id);
        self.output = Relation::new(self.nodes[id].schema.clone());
    }

    /// The maintained output view.
    pub fn output(&self) -> &Relation<R> {
        &self.output
    }

    /// Propagation counters.
    pub fn stats(&self) -> DataflowStats {
        self.stats
    }

    /// Zero the propagation counters. Used after a re-plan's preprocessing
    /// replay, whose one-off counter noise is not update-stream work.
    pub fn reset_stats(&mut self) {
        self.stats = DataflowStats::default();
        // The registry keeps its cumulative totals; re-base the mirror so
        // the next sync diffs against the fresh zeros instead of
        // saturating against the discarded history.
        if let Some(obs) = &mut self.obs {
            obs.mirrored = DataflowStats::default();
        }
    }

    /// Count updates received at a boundary that bypasses
    /// [`Self::apply_batch`] (pre-consolidated ingestion), so
    /// `updates_in` stays a truthful ingestion total.
    pub(crate) fn record_updates_in(&mut self, n: u64) {
        self.stats.updates_in += n;
    }

    /// Number of operator nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Join every multiway-join input fed directly by a [`Source`] node
    /// onto `hub`'s shared store for that source's relation, switching
    /// those slots to coordinator-driven advancement (see [`StoreHub`]).
    /// Returns the number of dedup hits — slots that adopted a store
    /// some earlier engine had already donated. Slots fed by derived
    /// (non-source) inputs keep their private stores.
    ///
    /// [`Source`]: Dataflow::add_source
    pub fn share_multiway_stores(&mut self, hub: &StoreHub<R>) -> usize {
        let source_of: Vec<Option<Sym>> = self
            .nodes
            .iter()
            .map(|n| match &n.op {
                Operator::Source { relation } => Some(*relation),
                _ => None,
            })
            .collect();
        let mut hits = 0;
        for node in &mut self.nodes {
            let inputs = node.inputs.clone();
            if let Operator::MultiwayJoin(state) = &mut node.op {
                for (slot, &input) in inputs.iter().enumerate() {
                    if let Some(rel) = source_of[input] {
                        if state.share_slot(slot, rel, hub) {
                            hits += 1;
                        }
                    }
                }
            }
        }
        hits
    }

    /// Tuples resident in state this dataflow *owns*: the output view,
    /// binary-join indexes, and non-hub multiway stores. Hub-shared
    /// stores are excluded so a census over many engines plus one hub
    /// counts each shared relation exactly once.
    pub fn resident_tuples(&self) -> usize {
        let mut n = self.output.len();
        for node in &self.nodes {
            match &node.op {
                Operator::DeltaJoin(js) => {
                    n += js.left.tuple_count() + js.right.tuple_count();
                }
                Operator::MultiwayJoin(state) => n += state.owned_tuples(),
                _ => {}
            }
        }
        n
    }

    /// Whether some source listens to `relation`. O(1).
    pub fn has_source_for(&self, relation: Sym) -> bool {
        self.source_relations.contains(&relation)
    }

    /// One human-readable line per node (for tests and plan debugging).
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let kind = match &n.op {
                Operator::Source { relation } => format!("Source({relation})"),
                Operator::Filter { .. } => "Filter".to_string(),
                Operator::Map { .. } => "Map".to_string(),
                Operator::DeltaJoin(_) => "DeltaJoin".to_string(),
                Operator::MultiwayJoin(s) => format!("MultiwayJoin(atoms={})", s.atom_count()),
                Operator::GroupAggregate { .. } => "GroupAggregate".to_string(),
            };
            let sink = if self.sink == Some(i) {
                "  <- sink"
            } else {
                ""
            };
            writeln!(s, "{i}: {kind}{:?} inputs={:?}{sink}", n.schema, n.inputs).unwrap();
        }
        s
    }

    /// Apply a batch of single-tuple updates: consolidate, propagate one
    /// delta per node in topological order, fold the sink delta into the
    /// output view, and return the output delta.
    ///
    /// Errors with [`EngineError::UnknownRelation`] if an update targets a
    /// relation no source listens to.
    pub fn apply_batch(&mut self, updates: &[Update<R>]) -> Result<Relation<R>, EngineError> {
        for u in updates {
            if !self.source_relations.contains(&u.relation) {
                return Err(EngineError::UnknownRelation(u.relation));
            }
        }
        self.stats.updates_in += updates.len() as u64;
        let batch = DeltaBatch::from_updates(updates);
        self.apply_delta_batch(&batch)
    }

    /// Propagate an already consolidated batch (relations must be known).
    pub fn apply_delta_batch(&mut self, batch: &DeltaBatch<R>) -> Result<Relation<R>, EngineError> {
        let sink = self.sink.expect("dataflow has no sink");
        self.stats.batches += 1;
        let out_schema = self.nodes[sink].schema.clone();
        if batch.is_empty() {
            if let Some(obs) = &mut self.obs {
                obs.sync(&self.stats);
            }
            return Ok(Relation::new(out_schema));
        }
        self.stats.deltas_in += batch.len() as u64;
        // Under an ambient epoch root (session/serve ingest), the whole
        // batch gets a span and each touched operator becomes its child;
        // standalone use (no root) traces nothing.
        let batch_span = self
            .obs
            .as_ref()
            .and_then(|o| o.tracer.child_span(o.batch_label));
        let t_batch = self.obs.as_ref().map(|_| Instant::now());

        let nodes = &mut self.nodes;
        let stats = &mut self.stats;
        let obs = &mut self.obs;
        let mut deltas: Vec<Option<Relation<R>>> = (0..nodes.len()).map(|_| None).collect();
        // Indexing, not iterating: each step splits `deltas` at `id` to
        // read predecessors while writing the current slot.
        // Per-operator timing rides one running clock: each node's cost is
        // the gap between consecutive reads (one `Instant::now()` per node,
        // not two), keeping the attached hot path near the detached one.
        let mut t_prev = t_batch;
        #[allow(clippy::needless_range_loop)]
        for id in 0..nodes.len() {
            let (done, rest) = deltas.split_at_mut(id);
            let node = &mut nodes[id];
            let delta = match &mut node.op {
                Operator::Source { relation } => batch.delta(*relation).map(|m| {
                    let mut rel = Relation::new(node.schema.clone());
                    for (t, r) in m {
                        debug_assert_eq!(
                            t.arity(),
                            node.schema.arity(),
                            "update arity mismatch for {relation}"
                        );
                        rel.apply(t.clone(), r);
                    }
                    rel
                }),
                Operator::Filter { predicate } => done[node.inputs[0]].as_ref().map(|d| {
                    let mut out = Relation::new(node.schema.clone());
                    for (t, r) in d.iter() {
                        if predicate(t) {
                            out.apply(t.clone(), r);
                        }
                    }
                    out
                }),
                Operator::Map { f } => done[node.inputs[0]].as_ref().map(|d| {
                    let mut out = Relation::new(node.schema.clone());
                    for (t, r) in d.iter() {
                        let mapped = f(t);
                        debug_assert_eq!(
                            mapped.arity(),
                            node.schema.arity(),
                            "map output arity mismatch"
                        );
                        out.apply(mapped, r);
                    }
                    out
                }),
                Operator::DeltaJoin(state) => {
                    let dl = done[node.inputs[0]].as_ref();
                    let dr = done[node.inputs[1]].as_ref();
                    let d = join_delta(state, &node.schema, dl, dr);
                    if let Some(d) = &d {
                        stats.binary_join_tuples += d.len() as u64;
                    }
                    d
                }
                Operator::MultiwayJoin(state) => {
                    let input_deltas: Vec<Option<&Relation<R>>> =
                        node.inputs.iter().map(|&i| done[i].as_ref()).collect();
                    state.apply(&input_deltas, stats)
                }
                Operator::GroupAggregate { group_by, lift } => done[node.inputs[0]]
                    .as_ref()
                    .map(|d| aggregate(d, group_by, *lift)),
            };
            if let (Some(o), Some(prev)) = (obs.as_ref(), t_prev) {
                let in_tuples: u64 = node
                    .inputs
                    .iter()
                    .map(|&i| done[i].as_ref().map_or(0, |d| d.len() as u64))
                    .sum();
                // Untouched nodes (no input delta, nothing produced) skip
                // the clock read and the counter writes entirely; their
                // ~ns of dispatch time folds into the next touched node.
                if in_tuples > 0 || delta.is_some() {
                    let now = Instant::now();
                    let h = &o.ops[id];
                    h.apply_ns.add((now - prev).as_nanos() as u64);
                    // The operator span rides the same running clock —
                    // no extra `Instant::now()` for tracing.
                    if let Some(bs) = &batch_span {
                        o.tracer.record_at(
                            h.span_label,
                            Some(bs.id()),
                            bs.epoch(),
                            prev,
                            now - prev,
                        );
                    }
                    t_prev = Some(now);
                    h.in_tuples.add(in_tuples);
                    h.out_tuples
                        .add(delta.as_ref().map_or(0, |d| d.len() as u64));
                }
            }
            // Propagate only non-empty deltas; empty ones are fixpoints.
            rest[0] = delta.filter(|d| !d.is_empty());
        }

        let out_delta = deltas[sink]
            .take()
            .unwrap_or_else(|| Relation::new(out_schema));
        self.stats.output_delta_tuples += out_delta.len() as u64;
        for (t, r) in out_delta.iter() {
            self.output.apply(t.clone(), r);
        }
        if let (Some(o), Some(t0)) = (self.obs.as_mut(), t_batch) {
            o.batch_ns.record_duration(t0.elapsed());
            o.sync(&self.stats);
        }
        Ok(out_delta)
    }
}

impl<R: Semiring> Default for Dataflow<R> {
    fn default() -> Self {
        Dataflow::new()
    }
}

/// The semi-naive join delta: advance the right index to `R ⊎ δR`, probe it
/// with `δL`, probe the *old* left index with `δR`, then advance the left
/// index. Together: `δL⋈R ⊎ L⋈δR ⊎ δL⋈δR`.
fn join_delta<R: Semiring>(
    state: &mut JoinState<R>,
    out_schema: &Schema,
    dl: Option<&Relation<R>>,
    dr: Option<&Relation<R>>,
) -> Option<Relation<R>> {
    if dl.is_none() && dr.is_none() {
        return None;
    }
    let mut out = Relation::new(out_schema.clone());

    if let Some(dr) = dr {
        for (t, r) in dr.iter() {
            state.right.apply(t, r);
        }
    }
    if let Some(dl) = dl {
        // δL ⋈ (R ⊎ δR): output = left tuple ++ right residual.
        for (lt, lr) in dl.iter() {
            let key = lt.project(&state.left_key_pos);
            if let Some(group) = state.right.group(&key) {
                for (residual, rr) in group.iter() {
                    out.apply(lt.concat(residual), &lr.times(rr));
                }
            }
        }
    }
    if let Some(dr) = dr {
        // L ⋈ δR against the pre-batch left index, assembled column-wise.
        for (rt, rr) in dr.iter() {
            let key = rt.project(&state.right_key_pos);
            if let Some(group) = state.left.group(&key) {
                for (lres, lr) in group.iter() {
                    let tuple: Tuple = state
                        .right_probe_plan
                        .iter()
                        .map(|src| -> Value {
                            match *src {
                                ColSrc::Key(p) => key.at(p).clone(),
                                ColSrc::LeftResidual(p) => lres.at(p).clone(),
                                ColSrc::RightTuple(p) => rt.at(p).clone(),
                            }
                        })
                        .collect();
                    out.apply(tuple, &lr.times(rr));
                }
            }
        }
    }
    if let Some(dl) = dl {
        for (t, r) in dl.iter() {
            state.left.apply(t, r);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::{eval_join_aggregate, lift_one};
    use ivm_data::{sym, tup, vars};

    fn two_rel_flow() -> (Dataflow<i64>, Sym, Sym) {
        // Q(x, z) = Σ_y R(x, y) · S(y, z)
        let [x, y, z] = vars(["gr_X", "gr_Y", "gr_Z"]);
        let (rn, sn) = (sym("gr_R"), sym("gr_S"));
        let mut df: Dataflow<i64> = Dataflow::new();
        let r = df.add_source(rn, Schema::from([x, y]));
        let s = df.add_source(sn, Schema::from([y, z]));
        let j = df.add_join(r, s);
        let agg = df.add_aggregate(j, Schema::from([x, z]), lift_one);
        df.set_sink(agg);
        (df, rn, sn)
    }

    #[test]
    fn join_then_aggregate_matches_oracle() {
        let (mut df, rn, sn) = two_rel_flow();
        let ups: Vec<Update<i64>> = vec![
            Update::with_payload(rn, tup![1i64, 10i64], 2),
            Update::with_payload(rn, tup![2i64, 10i64], 1),
            Update::with_payload(sn, tup![10i64, 7i64], 3),
            Update::with_payload(sn, tup![10i64, 8i64], 1),
        ];
        df.apply_batch(&ups).unwrap();

        let [x, y, z] = vars(["gr_X", "gr_Y", "gr_Z"]);
        let r = Relation::from_rows(
            Schema::from([x, y]),
            [(tup![1i64, 10i64], 2i64), (tup![2i64, 10i64], 1)],
        );
        let s = Relation::from_rows(
            Schema::from([y, z]),
            [(tup![10i64, 7i64], 3i64), (tup![10i64, 8i64], 1)],
        );
        let expect = eval_join_aggregate(&[&r, &s], &Schema::from([x, z]), lift_one);
        assert_eq!(df.output().len(), expect.len());
        for (t, p) in expect.iter() {
            assert_eq!(&df.output().get(t), p, "at {t:?}");
        }
    }

    #[test]
    fn deletes_roll_back_to_empty() {
        let (mut df, rn, sn) = two_rel_flow();
        let ins: Vec<Update<i64>> = vec![
            Update::insert(rn, tup![1i64, 10i64]),
            Update::insert(sn, tup![10i64, 7i64]),
        ];
        df.apply_batch(&ins).unwrap();
        assert_eq!(df.output().len(), 1);
        let del: Vec<Update<i64>> = vec![Update::delete(rn, tup![1i64, 10i64])];
        let delta = df.apply_batch(&del).unwrap();
        assert_eq!(delta.get(&tup![1i64, 7i64]), -1);
        assert!(df.output().is_empty());
    }

    #[test]
    fn batch_with_both_sides_uses_bilinear_rule() {
        // δL and δR in the same batch must contribute the δL⋈δR term.
        let (mut df, rn, sn) = two_rel_flow();
        let ups: Vec<Update<i64>> = vec![
            Update::insert(rn, tup![1i64, 10i64]),
            Update::insert(sn, tup![10i64, 7i64]),
        ];
        let delta = df.apply_batch(&ups).unwrap();
        assert_eq!(delta.get(&tup![1i64, 7i64]), 1);
    }

    #[test]
    fn filter_and_map_are_linear() {
        let [x, y] = vars(["gr_FX", "gr_FY"]);
        let rn = sym("gr_FR");
        let mut df: Dataflow<i64> = Dataflow::new();
        let src = df.add_source(rn, Schema::from([x, y]));
        let flt = df.add_filter(src, |t| t.at(0).as_int().unwrap() > 0);
        let prj = df.add_project(flt, Schema::from([y]));
        df.set_sink(prj);

        let ups: Vec<Update<i64>> = vec![
            Update::with_payload(rn, tup![1i64, 5i64], 2),
            Update::with_payload(rn, tup![-1i64, 5i64], 7), // filtered out
            Update::with_payload(rn, tup![2i64, 5i64], 1),  // merges with first
        ];
        df.apply_batch(&ups).unwrap();
        assert_eq!(df.output().get(&tup![5i64]), 3);

        df.apply_batch(&[Update::with_payload(rn, tup![1i64, 5i64], -2)])
            .unwrap();
        assert_eq!(df.output().get(&tup![5i64]), 1);
    }

    #[test]
    fn cartesian_join_empty_common() {
        let [x, y] = vars(["gr_CX", "gr_CY"]);
        let (rn, sn) = (sym("gr_CR"), sym("gr_CS"));
        let mut df: Dataflow<i64> = Dataflow::new();
        let r = df.add_source(rn, Schema::from([x]));
        let s = df.add_source(sn, Schema::from([y]));
        let j = df.add_join(r, s);
        df.set_sink(j);
        df.apply_batch(&[
            Update::with_payload(rn, tup![1i64], 2),
            Update::with_payload(sn, tup![9i64], 3),
        ])
        .unwrap();
        assert_eq!(df.output().get(&tup![1i64, 9i64]), 6);
    }

    #[test]
    fn unknown_relation_rejected() {
        let (mut df, _, _) = two_rel_flow();
        let bad: Vec<Update<i64>> = vec![Update::insert(sym("gr_nope"), tup![1i64])];
        assert!(matches!(
            df.apply_batch(&bad),
            Err(EngineError::UnknownRelation(_))
        ));
    }

    #[test]
    fn consolidation_skips_cancelled_work() {
        let (mut df, rn, _) = two_rel_flow();
        let before = df.stats();
        let ups: Vec<Update<i64>> = vec![
            Update::insert(rn, tup![1i64, 1i64]),
            Update::delete(rn, tup![1i64, 1i64]),
        ];
        df.apply_batch(&ups).unwrap();
        let after = df.stats();
        assert_eq!(after.updates_in - before.updates_in, 2);
        assert_eq!(
            after.deltas_in, before.deltas_in,
            "cancelled batch propagates nothing"
        );
    }

    #[test]
    fn describe_lists_nodes() {
        let (df, _, _) = two_rel_flow();
        let d = df.describe();
        assert!(d.contains("Source"));
        assert!(d.contains("DeltaJoin"));
        assert!(d.contains("<- sink"));
    }

    /// The sharded engine moves whole dataflows (including filter/map
    /// closures, join indexes, and multiway tries) onto worker threads.
    #[test]
    fn dataflow_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Dataflow<i64>>();
        assert_send::<DataflowStats>();
    }

    #[test]
    fn stats_merge_sums_every_counter() {
        let a = DataflowStats {
            batches: 1,
            updates_in: 2,
            deltas_in: 3,
            output_delta_tuples: 4,
            binary_join_tuples: 5,
            multiway_seeds: 6,
            multiway_probes: 7,
            multiway_intersections: 8,
        };
        let b = DataflowStats {
            batches: 10,
            updates_in: 20,
            deltas_in: 30,
            output_delta_tuples: 40,
            binary_join_tuples: 50,
            multiway_seeds: 60,
            multiway_probes: 70,
            multiway_intersections: 80,
        };
        let m = a.merged(&b);
        assert_eq!(m.batches, 11);
        assert_eq!(m.updates_in, 22);
        assert_eq!(m.deltas_in, 33);
        assert_eq!(m.output_delta_tuples, 44);
        assert_eq!(m.binary_join_tuples, 55);
        assert_eq!(m.multiway_seeds, 66);
        assert_eq!(m.multiway_probes, 77);
        assert_eq!(m.multiway_intersections, 88);
        // Merging the default is the identity.
        assert_eq!(b.merged(&DataflowStats::default()), b);

        // since() is merge's saturating inverse. A window baseline can
        // exceed the current snapshot after a counter reset (replan) or
        // when a fleet's merged snapshot lags a baseline taken
        // mid-settle; every field must clamp to zero, never wrap.
        assert_eq!(m.since(&a), b);
        let window = a.since(&b);
        assert_eq!(window, DataflowStats::default(), "underflow must clamp");
        assert_eq!(DataflowStats::default().since(&m), DataflowStats::default());
    }

    /// Attached registry mirrors the stats counters and records
    /// per-operator apply time / tuple counts; detaching stops updates
    /// but keeps the registry's cumulative values.
    #[test]
    fn attached_registry_mirrors_stats() {
        use ivm_obs::MetricsRegistry;
        let (mut df, rn, sn) = two_rel_flow();
        let reg = MetricsRegistry::new();
        df.attach_obs(&reg, "t.df");
        let ups: Vec<Update<i64>> = vec![
            Update::with_payload(rn, tup![1i64, 10i64], 2),
            Update::with_payload(sn, tup![10i64, 7i64], 3),
        ];
        df.apply_batch(&ups).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("t.df.batches"), df.stats().batches);
        assert_eq!(snap.counter("t.df.updates_in"), 2);
        assert_eq!(
            snap.counter("t.df.output_delta_tuples"),
            df.stats().output_delta_tuples
        );
        // Per-operator series exist: node 0 is Source(gr_R) and saw the
        // consolidated R-delta on its output side.
        assert_eq!(snap.counter("t.df.op.0.source_gr_R.out_tuples"), 1);
        assert!(snap.histogram("t.df.batch_apply_ns").unwrap().count == 1);

        // reset_stats re-bases the mirror: the registry keeps counting
        // increments on top of its cumulative total.
        df.reset_stats();
        df.apply_batch(&[Update::with_payload(rn, tup![2i64, 10i64], 1)])
            .unwrap();
        let snap2 = reg.snapshot();
        assert_eq!(snap2.counter("t.df.updates_in"), 3);
        assert_eq!(snap2.counter("t.df.batches"), 2);

        df.detach_obs();
        df.apply_batch(&[Update::with_payload(rn, tup![3i64, 10i64], 1)])
            .unwrap();
        assert_eq!(reg.snapshot().counter("t.df.updates_in"), 3);
    }
}
