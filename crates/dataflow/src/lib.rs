//! A generic batched delta-dataflow runtime for incremental view
//! maintenance.
//!
//! The engines in `ivm-core` are per-class specialists: each implements one
//! dichotomy class of the paper (q-hierarchical cascades, CQAPs, acyclic
//! join trees) with that class's constant-time guarantees. This crate is
//! the *generic fallback*: it maintains **any** conjunctive query with
//! aggregates — including cyclic queries such as the triangle query of
//! Kara et al., *Maintaining Triangle Queries under Updates* — by delta
//! propagation through a composable operator DAG, in the style of Koch et
//! al.'s collection programming and of DBSP.
//!
//! Four layers:
//!
//! * [`DeltaBatch`] — consolidates a batch of single-tuple updates
//!   per `(relation, tuple)`; sound because ring payloads make batch
//!   effects order-independent (Sec. 2 of the paper);
//! * [`Dataflow`] — the runtime: `Source`, `Filter`, `Map`/`Project`,
//!   hash-indexed binary `DeltaJoin` (semi-naive: `δL⋈R ⊎ L⋈δR ⊎ δL⋈δR`),
//!   the worst-case-optimal [`multiway`] `MultiwayJoin` (attribute-at-a-
//!   time intersection search over shared hash-trie indexes, deltas
//!   seeded from the changed tuples), and `GroupAggregate` nodes over any
//!   [`ivm_ring::Semiring`], driven by [`Dataflow::apply_batch`];
//! * [`cost`] — deterministic cost-based orderings: the left-deep atom
//!   order and the multiway variable-elimination order, both derived
//!   from relation cardinalities with stable tie-breaking, plus the
//!   coarse plan-cost proxies the replan policy ranks orders with;
//! * [`adapt`] — adaptive replanning: [`LearnedCardinalities`] (live
//!   per-relation counts from the stream) and [`ReplanPolicy`] (when a
//!   re-lowering through
//!   [`DataflowEngine::replan_with_cards`](engine::DataflowEngine::replan_with_cards)
//!   pays for itself: first-data, observed binary blowup, or a predicted
//!   cost ratio — all with hysteresis);
//! * [`planner::lower`] + [`DataflowEngine`] — splits on the hypergraph
//!   (GYO check shared with `ivm_query::acyclic`): α-acyclic queries get
//!   the left-deep `DeltaJoin` chain, cyclic queries get one
//!   `MultiwayJoin` node that materializes no binary intermediates
//!   ([`DataflowStats::binary_join_tuples`] stays zero); wrapped as an
//!   `ivm_core::Maintainer`, so the runtime slots into the existing
//!   equivalence tests, benches, and examples. [`JoinStrategy`] forces
//!   either plan for cross-checking.
//!
//! # Quickstart
//!
//! ```
//! use ivm_core::Maintainer;
//! use ivm_data::{ops::lift_one, sym, tup, vars, Database, Tuple, Update};
//! use ivm_dataflow::DataflowEngine;
//! use ivm_query::{Atom, Query};
//!
//! // The cyclic self-join triangle count Q() = Σ E(a,b)·E(b,c)·E(c,a):
//! // no specialized engine accepts it.
//! let [a, b, c] = vars(["doc_A", "doc_B", "doc_C"]);
//! let e = sym("doc_E");
//! let q = Query::new(
//!     "doc_tri",
//!     [],
//!     vec![Atom::new(e, [a, b]), Atom::new(e, [b, c]), Atom::new(e, [c, a])],
//! );
//! let mut eng = DataflowEngine::<i64>::new(q, &Database::new(), lift_one).unwrap();
//!
//! // One batch, consolidated and propagated once. The directed triangle
//! // 1→2→3→1 has three rotations of (a, b, c), hence payload 3.
//! let batch: Vec<Update<i64>> = [(1i64, 2i64), (2, 3), (3, 1)]
//!     .into_iter()
//!     .map(|(x, y)| Update::insert(e, tup![x, y]))
//!     .collect();
//! eng.apply_batch(&batch).unwrap();
//! assert_eq!(eng.output_relation().get(&Tuple::empty()), 3);
//! ```

pub mod adapt;
pub mod batch;
pub mod cost;
pub mod engine;
pub mod graph;
pub mod multiway;
pub mod planner;

pub use adapt::{
    DegreeSketch, EngineFamily, FamilyDecision, LearnedCardinalities, ReplanDecision, ReplanPolicy,
    ReplanTrigger,
};
pub use batch::DeltaBatch;
pub use cost::Cardinalities;
pub use engine::DataflowEngine;
pub use graph::{Dataflow, DataflowStats, NodeId};
pub use multiway::StoreHub;
pub use planner::{lower, lower_with, resolve_strategy, JoinStrategy};
