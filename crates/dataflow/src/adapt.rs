//! Adaptive replanning: learned cardinalities and the replan policy.
//!
//! Every dataflow plan is lowered from a [`Cardinalities`] snapshot taken
//! at build time. A session built before data arrives — the common
//! streaming pattern — cost-orders its joins from all-zero counts, so its
//! atom and variable orders are pure tie-break noise, and nothing ever
//! reconsiders them as the update stream makes the plan arbitrarily bad.
//! The heavy-light and IVMε lines of work (Abo-Khamis et al.; Kara et
//! al.) get their guarantees precisely by adapting the maintenance
//! strategy to *observed* relation sizes and skew. This module supplies
//! the two pieces a caller needs to do the same:
//!
//! * [`LearnedCardinalities`] — live per-relation counts, refreshed from
//!   the mirrored base state the caller already owns (relation sizes are
//!   O(1) reads, so a refresh is O(#atoms) per batch);
//! * [`ReplanPolicy`] — decides *when* a re-lowering pays for itself, by
//!   comparing the orders the running plan was lowered from against what
//!   [`cost::atom_order`]/[`cost::variable_order`] would derive from the
//!   learned counts (predicted-cost ratio with hysteresis) and by
//!   watching the observed counters for the left-deep chain's
//!   binary-intermediate blowup.
//!
//! The policy only decides; the *mechanism* is
//! [`DataflowEngine::replan_with_cards`](crate::DataflowEngine::replan_with_cards)
//! (and its sharded broadcast counterpart), which the session layer
//! invokes with the decision's strategy and learned snapshot.

use crate::cost::{self, Cardinalities};
use crate::graph::DataflowStats;
use crate::planner::{resolve_strategy, JoinStrategy};
use ivm_data::{Database, FxHashMap, FxHashSet, Sym, Update, Value};
use ivm_query::Query;
use ivm_ring::Semiring;

/// Exact per-key degree tracking for one binary relation: which distinct
/// partners each first-column key currently has. This is the statistic
/// the heavy-light family thresholds on (a key is *heavy* when its degree
/// reaches N^ε), so the adaptive layer tracks it the same way it tracks
/// relation sizes — from the mirrored base state it already owns.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegreeSketch {
    rows: FxHashMap<Value, FxHashSet<Value>>,
}

impl DegreeSketch {
    /// Record the post-update presence of pair `(x, y)`.
    pub fn set_present(&mut self, x: &Value, y: &Value, present: bool) {
        if present {
            self.rows.entry(x.clone()).or_default().insert(y.clone());
        } else if let Some(row) = self.rows.get_mut(x) {
            row.remove(y);
            if row.is_empty() {
                self.rows.remove(x);
            }
        }
    }

    /// The current degree (distinct present partners) of `x`.
    pub fn degree(&self, x: &Value) -> u64 {
        self.rows.get(x).map_or(0, |r| r.len() as u64)
    }

    /// The largest degree of any key — the skew statistic the family
    /// policy compares against the N^ε sublinear bound.
    pub fn max_degree(&self) -> u64 {
        self.rows
            .values()
            .map(|r| r.len() as u64)
            .max()
            .unwrap_or(0)
    }

    /// How many keys have degree ≥ `threshold` (the would-be heavy set).
    pub fn keys_at_least(&self, threshold: u64) -> usize {
        self.rows
            .values()
            .filter(|r| r.len() as u64 >= threshold)
            .count()
    }

    /// Per-key degrees sorted by key, for persistence: identical sketches
    /// export identical byte streams.
    pub fn export(&self) -> Vec<(Value, u64)> {
        let mut out: Vec<(Value, u64)> = self
            .rows
            .iter()
            .map(|(k, r)| (k.clone(), r.len() as u64))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Live per-relation cardinalities, learned from the update stream.
///
/// The tracker does not second-guess the base state: the caller that owns
/// the ground truth (e.g. the session's mirrored database) calls
/// [`LearnedCardinalities::refresh`] after each applied batch, which
/// snapshots every query relation's *live* size — exact, and O(#atoms)
/// per batch because relation sizes are O(1) reads.
/// Degree sketches are only kept for binary relations — the shape the
/// heavy-light family partitions — so the per-batch tracking cost stays
/// proportional to the updates that could actually shift the family.
#[derive(Clone, Debug, Default)]
pub struct LearnedCardinalities {
    sizes: FxHashMap<Sym, usize>,
    degrees: FxHashMap<Sym, DegreeSketch>,
}

impl LearnedCardinalities {
    /// A tracker that has seen nothing yet.
    pub fn new() -> Self {
        LearnedCardinalities::default()
    }

    /// Snapshot the live size of every relation of `q` from `db` (the
    /// maintained base state).
    pub fn refresh<R: Semiring>(&mut self, db: &Database<R>, q: &Query) {
        for atom in &q.atoms {
            self.sizes
                .insert(atom.name, db.get(atom.name).map_or(0, |r| r.len()));
        }
    }

    /// The learned live size of `relation` (0 when never seen).
    pub fn get(&self, relation: Sym) -> usize {
        self.sizes.get(&relation).copied().unwrap_or(0)
    }

    /// Whether any relation has been observed non-empty.
    pub fn has_data(&self) -> bool {
        self.sizes.values().any(|&n| n > 0)
    }

    /// The total live base size `Σ |R_i|` over the learned relations —
    /// the policy's estimate of what a replan's replay would cost.
    pub fn total_size(&self) -> u64 {
        self.sizes.values().map(|&n| n as u64).sum()
    }

    /// The learned counts as a [`Cardinalities`] snapshot, ready to feed
    /// a re-lowering.
    pub fn to_cardinalities(&self) -> Cardinalities {
        let mut cards = Cardinalities::none();
        for (&rel, &n) in &self.sizes {
            cards.set(rel, n);
        }
        cards
    }

    /// Export the learned counts for persistence, sorted by relation name
    /// so identical trackers export identical byte streams.
    pub fn export(&self) -> Vec<(Sym, u64)> {
        let mut out: Vec<(Sym, u64)> = self
            .sizes
            .iter()
            .map(|(&rel, &n)| (rel, n as u64))
            .collect();
        out.sort_by_key(|(rel, _)| rel.name());
        out
    }

    /// Rebuild a tracker from previously [`export`](Self::export)ed
    /// counts — the warm-restart path: a recovered session resumes with
    /// the cardinalities it had learned before the kill instead of
    /// starting blind.
    pub fn import(counts: impl IntoIterator<Item = (Sym, u64)>) -> Self {
        LearnedCardinalities {
            sizes: counts
                .into_iter()
                .map(|(rel, n)| (rel, n as usize))
                .collect(),
            degrees: FxHashMap::default(),
        }
    }

    /// Track per-key degrees through a batch that has already been
    /// applied to `db`: each touched pair's sketch entry is set to its
    /// *post-state* presence, so replaying the same update twice (or a
    /// whole consolidated batch out of order) converges to the same
    /// sketch. Only binary atoms of `q` are tracked.
    pub fn observe_batch<R: Semiring>(&mut self, db: &Database<R>, q: &Query, batch: &[Update<R>]) {
        for upd in batch {
            if upd.tuple.arity() != 2 {
                continue;
            }
            if !q.atoms.iter().any(|a| a.name == upd.relation) {
                continue;
            }
            let present = db.get(upd.relation).is_some_and(|r| r.contains(&upd.tuple));
            self.degrees.entry(upd.relation).or_default().set_present(
                upd.tuple.at(0),
                upd.tuple.at(1),
                present,
            );
        }
    }

    /// Rebuild every binary relation's degree sketch from the base state
    /// in one scan — the recovery path: a restored session gets its exact
    /// heavy-hitter picture back without replaying the stream that
    /// produced it.
    pub fn rebuild_degrees<R: Semiring>(&mut self, db: &Database<R>, q: &Query) {
        self.degrees.clear();
        for atom in &q.atoms {
            if atom.schema.arity() != 2 {
                continue;
            }
            let Some(rel) = db.get(atom.name) else {
                continue;
            };
            let sketch = self.degrees.entry(atom.name).or_default();
            for (t, _) in rel.iter() {
                sketch.set_present(t.at(0), t.at(1), true);
            }
        }
    }

    /// The degree sketch of `relation`, when one is tracked.
    pub fn degree_sketch(&self, relation: Sym) -> Option<&DegreeSketch> {
        self.degrees.get(&relation)
    }

    /// The largest per-key degree across every tracked relation — the
    /// skew statistic [`ReplanPolicy::decide_family`] weighs against the
    /// N^ε sublinear bound.
    pub fn max_degree_any(&self) -> u64 {
        self.degrees
            .values()
            .map(|s| s.max_degree())
            .max()
            .unwrap_or(0)
    }

    /// Export every tracked degree sketch for persistence, sorted by
    /// relation name (and by key within each sketch).
    pub fn export_degrees(&self) -> Vec<(Sym, Vec<(Value, u64)>)> {
        let mut out: Vec<(Sym, Vec<(Value, u64)>)> = self
            .degrees
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(&rel, s)| (rel, s.export()))
            .collect();
        out.sort_by_key(|(rel, _)| rel.name());
        out
    }
}

/// Which of the policy's three triggers fired a replan. The session's
/// replan timeline renders these as short names, so an `explain()` reads
/// as an audit log rather than a debug dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplanTrigger {
    /// A blind-built plan re-lowered the moment learned counts would
    /// order it differently.
    FirstData,
    /// Observed left-deep binary-intermediate blowup → multiway switch.
    Blowup,
    /// Predicted cost ratio of running vs. fresh orders crossed the
    /// threshold.
    CostRatio,
    /// Learned skew crossed the N^ε boundary: the *engine family*
    /// switched (dataflow ↔ heavy-light), not just the plan within one.
    FamilyShift,
}

impl ReplanTrigger {
    /// Short stable name, used in timelines and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            ReplanTrigger::FirstData => "first-data",
            ReplanTrigger::Blowup => "blowup",
            ReplanTrigger::CostRatio => "cost-ratio",
            ReplanTrigger::FamilyShift => "family-shift",
        }
    }
}

/// The two backend *families* the adaptive layer can re-select between
/// mid-stream. Strategy replans re-lower orders within the dataflow
/// family; a family shift tears the backend down and rebuilds the other
/// kind from the mirrored base, carrying the learned statistics across.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineFamily {
    /// Delta-dataflow (left-deep or worst-case-optimal multiway).
    Dataflow,
    /// Heavy-light partitioned IVMε maintenance.
    HeavyLight,
}

impl std::fmt::Display for EngineFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineFamily::Dataflow => "dataflow",
            EngineFamily::HeavyLight => "heavy-light",
        })
    }
}

/// A family-shift verdict: rebuild the backend as `to`, seeded with the
/// learned `cards`, for the stated `reason`.
#[derive(Clone, Debug)]
pub struct FamilyDecision {
    /// The family to rebuild as.
    pub to: EngineFamily,
    /// The learned snapshot for the rebuild's lowering (dataflow only
    /// consults it, but carrying it keeps the contract uniform).
    pub cards: Cardinalities,
    /// Human-readable trigger, recorded in the session's replan events.
    pub reason: String,
}

impl std::fmt::Display for ReplanTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A policy verdict: re-lower onto `strategy` with orders derived from
/// `cards`, for the stated `reason`.
#[derive(Clone, Debug)]
pub struct ReplanDecision {
    /// The join strategy to lower (a concrete one, never `Auto`).
    pub strategy: JoinStrategy,
    /// The learned snapshot to derive the fresh atom/variable orders from.
    pub cards: Cardinalities,
    /// Which trigger fired (machine-readable counterpart of `reason`).
    pub trigger: ReplanTrigger,
    /// Human-readable trigger, recorded in the session's replan events.
    pub reason: String,
}

/// When is a re-lowering worth its replay cost?
///
/// Three triggers, in priority order:
///
/// 1. **First data.** A plan lowered from all-zero/unknown counts (blind
///    build) re-lowers as soon as learned counts would order it
///    differently — no hysteresis, because the blind orders were never a
///    decision to respect. (When the informed orders happen to *equal*
///    the blind tie-break, the plan stays blind and the triggers below
///    remain live — a coincidence of orders must not disable them.)
/// 2. **Observed blowup.** A left-deep plan whose window materialized
///    ≥ `blowup_factor` binary-join tuples per input-or-output delta
///    switches to the worst-case-optimal multiway plan — this is the
///    Sec. 3.3 intermediate-size blowup the WCOJ plan exists to avoid,
///    observed rather than predicted.
/// 3. **Predicted reorder.** Keeping the strategy, if the fresh orders
///    from learned counts differ from the running plan's and the cost
///    proxy rates the running orders ≥ `min_cost_ratio` times the fresh
///    ones, re-derive the orders.
///
/// Triggers 2 and 3 are doubly gated so thrashing is structurally
/// impossible, not merely unlikely: by `min_batches_between` (a clock in
/// ingestion calls since the last replan) *and* by replay amortization —
/// the window must have ingested at least `min_replay_fraction` of the
/// live base size in updates, because a replan replays the whole base, so
/// tying replans to ingested volume bounds total replay work at
/// `1/min_replay_fraction` times the stream's own work whatever the
/// batch size (per-update `apply` streams included).
#[derive(Clone, Copy, Debug)]
pub struct ReplanPolicy {
    /// Minimum ingestion calls (batches, or single updates on the
    /// `apply` path) between two policy-triggered replans.
    pub min_batches_between: u64,
    /// Minimum fraction of the live base size that must have been
    /// ingested (as updates) since the last replan — the amortization
    /// gate over the replay a replan costs.
    pub min_replay_fraction: f64,
    /// Minimum predicted cost ratio (current ÷ fresh) before a same-
    /// strategy reorder fires.
    pub min_cost_ratio: f64,
    /// Binary-join tuples per (input + output) delta tuple in the window
    /// before the left-deep → multiway switch fires.
    pub blowup_factor: f64,
    /// Skew margin for the cross-family switch: dataflow → heavy-light
    /// fires when the largest learned key degree reaches
    /// `family_cost_ratio × N^max(ε,1−ε)` (a delta pass pays O(d_max) per
    /// hub update where heavy-light pays O(N^max(ε,1−ε))); the reverse
    /// switch fires when the degree falls to `1/family_cost_ratio` of the
    /// bound, so the band between is hysteresis.
    pub family_cost_ratio: f64,
    /// The ε the family comparison (and a heavy-light rebuild) uses.
    pub eps: f64,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy {
            min_batches_between: 16,
            min_replay_fraction: 0.1,
            min_cost_ratio: 1.5,
            blowup_factor: 8.0,
            family_cost_ratio: 4.0,
            eps: 0.5,
        }
    }
}

impl ReplanPolicy {
    /// Decide whether the running plan should be re-lowered.
    ///
    /// * `resolved` — the concrete strategy the running plan was lowered
    ///   to (never `Auto`; see `DataflowEngine::resolved_strategy`);
    /// * `lowered_cards` — the snapshot the running plan's orders were
    ///   derived from;
    /// * `learned` — live counts from the stream;
    /// * `window` — counter increments since the last replan (or build);
    /// * `batches_since_replan` — the hysteresis clock.
    ///
    /// Returns `None` when the plan should stand.
    pub fn decide(
        &self,
        q: &Query,
        resolved: JoinStrategy,
        lowered_cards: &Cardinalities,
        learned: &LearnedCardinalities,
        window: &DataflowStats,
        batches_since_replan: u64,
    ) -> Option<ReplanDecision> {
        if !learned.has_data() {
            return None;
        }
        let cards = learned.to_cardinalities();

        // 1. First data after a blind build: the running orders are tie-
        // break noise; adopt informed ones the moment they would differ.
        // When they coincide, fall through — the plan happens to be the
        // informed one already, but the observed triggers stay live.
        if lowered_cards.is_blind_for(q) && orders_differ(q, resolved, lowered_cards, &cards) {
            return Some(ReplanDecision {
                strategy: resolved,
                cards,
                trigger: ReplanTrigger::FirstData,
                reason: "first non-empty data: the plan was lowered from \
                         all-zero cardinalities, so its orders were pure \
                         tie-breaking"
                    .into(),
            });
        }

        // Hysteresis clock AND replay amortization: a replan replays the
        // whole base, so the window must be both old enough and large
        // enough (in ingested updates relative to the base) to pay it off.
        if batches_since_replan < self.min_batches_between
            || (window.updates_in as f64) < self.min_replay_fraction * learned.total_size() as f64
        {
            return None;
        }

        // 2. Observed binary-intermediate blowup on the left-deep chain.
        if resolved == JoinStrategy::LeftDeep {
            let deltas = window.deltas_in + window.output_delta_tuples;
            if window.binary_join_tuples as f64 >= self.blowup_factor * deltas.max(1) as f64 {
                return Some(ReplanDecision {
                    strategy: JoinStrategy::Multiway,
                    cards,
                    trigger: ReplanTrigger::Blowup,
                    reason: format!(
                        "observed binary-join blowup: {} intermediate tuples \
                         for {} input+output delta tuples in the window \
                         (threshold {}×); switching to the worst-case-optimal \
                         multiway plan",
                        window.binary_join_tuples, deltas, self.blowup_factor
                    ),
                });
            }
        }

        // 3. Predicted reorder under the same strategy.
        let (current, fresh) = match resolved {
            JoinStrategy::LeftDeep => (
                cost::left_deep_cost(q, &cost::atom_order(q, lowered_cards), &cards),
                cost::left_deep_cost(q, &cost::atom_order(q, &cards), &cards),
            ),
            _ => (
                cost::multiway_cost(q, &cost::variable_order(q, lowered_cards), &cards),
                cost::multiway_cost(q, &cost::variable_order(q, &cards), &cards),
            ),
        };
        if orders_differ(q, resolved, lowered_cards, &cards)
            && current >= self.min_cost_ratio * fresh.max(f64::MIN_POSITIVE)
        {
            return Some(ReplanDecision {
                strategy: resolved,
                cards,
                trigger: ReplanTrigger::CostRatio,
                reason: format!(
                    "learned cardinalities rate the running orders {:.1}× the \
                     fresh ones (threshold {:.1}×); re-deriving atom/variable \
                     orders",
                    current / fresh.max(f64::MIN_POSITIVE),
                    self.min_cost_ratio
                ),
            });
        }
        None
    }
}

impl ReplanPolicy {
    /// Decide whether the backend *family* should switch — the
    /// cross-family counterpart of [`decide`](Self::decide), consulted
    /// first by adaptive sessions whose query admits the heavy-light
    /// engine.
    ///
    /// The comparison is the heavy-light complexity argument read off the
    /// learned statistics: a delta-dataflow pass pays O(d_max) work for an
    /// update touching the most skewed key, while the partitioned engine
    /// bounds every update by O(N^max(ε,1−ε)). When the observed `d_max`
    /// exceeds that bound by `family_cost_ratio`, skew has made the
    /// dataflow family the wrong one; when it falls below the bound by
    /// the same ratio, the auxiliary views stop paying for themselves.
    /// Both directions share [`decide`](Self::decide)'s double gate
    /// (hysteresis clock and replay amortization) because a family shift
    /// replays the whole base too.
    pub fn decide_family(
        &self,
        current: EngineFamily,
        hl_eligible: bool,
        learned: &LearnedCardinalities,
        window_updates: u64,
        batches_since_replan: u64,
    ) -> Option<FamilyDecision> {
        if !hl_eligible || !learned.has_data() {
            return None;
        }
        if batches_since_replan < self.min_batches_between
            || (window_updates as f64) < self.min_replay_fraction * learned.total_size() as f64
        {
            return None;
        }
        let n = learned.total_size().max(1) as f64;
        let bound = n.powf(self.eps.max(1.0 - self.eps)).max(1.0);
        let d_max = learned.max_degree_any() as f64;
        match current {
            EngineFamily::Dataflow if d_max >= self.family_cost_ratio * bound => {
                Some(FamilyDecision {
                    to: EngineFamily::HeavyLight,
                    cards: learned.to_cardinalities(),
                    reason: format!(
                        "learned skew: max key degree {d_max:.0} ≥ {:.1}× the \
                         N^max(ε,1−ε) bound {bound:.0} (N={n:.0}, ε={}); \
                         switching to the heavy-light family for sublinear \
                         amortized updates",
                        self.family_cost_ratio, self.eps
                    ),
                })
            }
            EngineFamily::HeavyLight if d_max * self.family_cost_ratio <= bound => {
                Some(FamilyDecision {
                    to: EngineFamily::Dataflow,
                    cards: learned.to_cardinalities(),
                    reason: format!(
                        "skew subsided: max key degree {d_max:.0} ≤ the \
                         N^max(ε,1−ε) bound {bound:.0} / {:.1} (N={n:.0}, \
                         ε={}); the auxiliary views no longer pay for \
                         themselves, returning to the dataflow family",
                        self.family_cost_ratio, self.eps
                    ),
                })
            }
            _ => None,
        }
    }
}

/// Whether re-deriving the orders from `new_cards` changes the plan at
/// all — comparing the order the strategy actually uses (atom order for
/// left-deep, variable order for multiway). `strategy` is resolved first
/// so an `Auto` caller compares the right artifact.
fn orders_differ(
    q: &Query,
    strategy: JoinStrategy,
    old_cards: &Cardinalities,
    new_cards: &Cardinalities,
) -> bool {
    match resolve_strategy(q, strategy) {
        JoinStrategy::Multiway => {
            cost::variable_order(q, old_cards) != cost::variable_order(q, new_cards)
        }
        _ => cost::atom_order(q, old_cards) != cost::atom_order(q, new_cards),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_core::Maintainer;
    use ivm_data::ops::lift_one;
    use ivm_data::{sym, tup, vars, Update};
    use ivm_query::Atom;

    /// R(a,b)·S(b,c)·T(c,d) — acyclic, order-sensitive.
    fn chain() -> Query {
        let [a, b, c, d] = vars(["ad_A", "ad_B", "ad_C", "ad_D"]);
        Query::new(
            "ad_chain",
            [a, d],
            vec![
                Atom::new(sym("ad_R"), [a, b]),
                Atom::new(sym("ad_S"), [b, c]),
                Atom::new(sym("ad_T"), [c, d]),
            ],
        )
    }

    #[test]
    fn learned_cards_track_live_sizes() {
        let q = chain();
        let r = sym("ad_R");
        let mut db: Database<i64> = Database::new();
        db.create(r, q.atoms[0].schema.clone());
        let mut learned = LearnedCardinalities::new();
        assert!(!learned.has_data());
        db.apply(&Update::insert(r, tup![1i64, 2i64]));
        db.apply(&Update::insert(r, tup![3i64, 4i64]));
        learned.refresh(&db, &q);
        assert!(learned.has_data());
        assert_eq!(learned.get(r), 2);
        assert_eq!(learned.get(sym("ad_S")), 0);
        assert_eq!(learned.total_size(), 2);
        // A delete shrinks the live count — these are sizes, not totals.
        db.apply(&Update::delete(r, tup![1i64, 2i64]));
        learned.refresh(&db, &q);
        assert_eq!(learned.get(r), 1);
        assert_eq!(learned.to_cardinalities().get(r), 1);
    }

    fn learned_with(sizes: &[(Sym, usize)]) -> LearnedCardinalities {
        let mut l = LearnedCardinalities::new();
        let mut db: Database<i64> = Database::new();
        let q = chain();
        for atom in &q.atoms {
            db.create(atom.name, atom.schema.clone());
        }
        for &(rel, n) in sizes {
            for i in 0..n as i64 {
                db.apply(&Update::with_payload(rel, tup![i, i + 1], 1));
            }
        }
        l.refresh(&db, &q);
        l
    }

    #[test]
    fn blind_build_replans_on_first_data_without_hysteresis() {
        let q = chain();
        let policy = ReplanPolicy::default();
        // Sizes that flip the atom order: T tiny opens the chain.
        let learned = learned_with(&[(sym("ad_R"), 50), (sym("ad_S"), 20), (sym("ad_T"), 1)]);
        let dec = policy
            .decide(
                &q,
                JoinStrategy::LeftDeep,
                &Cardinalities::none(),
                &learned,
                &DataflowStats::default(),
                0, // no batches elapsed: hysteresis must not block this
            )
            .expect("blind build must replan on first data");
        assert_eq!(dec.strategy, JoinStrategy::LeftDeep);
        assert_eq!(dec.trigger, ReplanTrigger::FirstData);
        assert_eq!(dec.trigger.name(), "first-data");
        assert!(dec.reason.contains("all-zero"));
        assert_eq!(dec.cards.get(sym("ad_T")), 1);
    }

    #[test]
    fn identical_orders_do_not_replan() {
        let q = chain();
        let policy = ReplanPolicy::default();
        // Sizes under which the informed order equals the syntactic one.
        let learned = learned_with(&[(sym("ad_R"), 1), (sym("ad_S"), 2), (sym("ad_T"), 3)]);
        assert!(policy
            .decide(
                &q,
                JoinStrategy::LeftDeep,
                &Cardinalities::none(),
                &learned,
                &DataflowStats::default(),
                0,
            )
            .is_none());
    }

    #[test]
    fn hysteresis_blocks_early_informed_replans() {
        let q = chain();
        let policy = ReplanPolicy::default();
        let mut old = Cardinalities::none();
        old.set(sym("ad_R"), 1)
            .set(sym("ad_S"), 2)
            .set(sym("ad_T"), 3);
        // Sizes have inverted hard — but the plan was informed, so the
        // hysteresis clock and the replay-amortization gate both apply.
        let learned = learned_with(&[(sym("ad_R"), 500), (sym("ad_S"), 20), (sym("ad_T"), 1)]);
        let w = DataflowStats {
            updates_in: 200, // well past min_replay_fraction × 521
            ..DataflowStats::default()
        };
        assert!(policy
            .decide(&q, JoinStrategy::LeftDeep, &old, &learned, &w, 3)
            .is_none());
        let dec = policy
            .decide(&q, JoinStrategy::LeftDeep, &old, &learned, &w, 16)
            .expect("inverted sizes past hysteresis must reorder");
        assert_eq!(dec.strategy, JoinStrategy::LeftDeep);
        assert_eq!(dec.trigger, ReplanTrigger::CostRatio);
        assert!(dec.reason.contains("re-deriving"));
        // A thin window (few updates ingested relative to the base the
        // replan would replay) blocks the reorder however old the clock:
        // replay work stays amortized against ingestion volume even on
        // per-update `apply` streams.
        let thin = DataflowStats {
            updates_in: 10,
            ..DataflowStats::default()
        };
        assert!(policy
            .decide(&q, JoinStrategy::LeftDeep, &old, &learned, &thin, 1_000)
            .is_none());
    }

    #[test]
    fn observed_blowup_switches_left_deep_to_multiway() {
        let q = chain();
        let policy = ReplanPolicy::default();
        let mut old = Cardinalities::none();
        old.set(sym("ad_R"), 10)
            .set(sym("ad_S"), 10)
            .set(sym("ad_T"), 10);
        let learned = learned_with(&[(sym("ad_R"), 10), (sym("ad_S"), 10), (sym("ad_T"), 10)]);
        let window = DataflowStats {
            updates_in: 30,
            deltas_in: 10,
            output_delta_tuples: 10,
            binary_join_tuples: 10_000,
            ..DataflowStats::default()
        };
        let dec = policy
            .decide(&q, JoinStrategy::LeftDeep, &old, &learned, &window, 64)
            .expect("blowup must trigger");
        assert_eq!(dec.strategy, JoinStrategy::Multiway);
        assert_eq!(dec.trigger, ReplanTrigger::Blowup);
        assert!(dec.reason.contains("blowup"));
        // The multiway plan sees the same window without tripping: the
        // trigger is strategy-specific.
        assert!(policy
            .decide(&q, JoinStrategy::Multiway, &old, &learned, &window, 64)
            .is_none());
    }

    /// A blind build whose informed orders coincide with the blind
    /// tie-break must not disable the observed triggers: the plan stays
    /// blind, but a binary blowup still switches it to multiway.
    #[test]
    fn blind_plan_with_coinciding_orders_still_hits_blowup_trigger() {
        let q = chain();
        let policy = ReplanPolicy::default();
        // All-equal sizes: atom_order over these equals the blind
        // tie-break, so the first-data trigger never fires...
        let learned = learned_with(&[(sym("ad_R"), 10), (sym("ad_S"), 10), (sym("ad_T"), 10)]);
        let blind = Cardinalities::none();
        let calm = DataflowStats {
            updates_in: 30,
            deltas_in: 10,
            output_delta_tuples: 10,
            ..DataflowStats::default()
        };
        assert!(policy
            .decide(&q, JoinStrategy::LeftDeep, &blind, &learned, &calm, 64)
            .is_none());
        // ...but the blowup trigger stays live behind it.
        let blowing = DataflowStats {
            binary_join_tuples: 10_000,
            ..calm
        };
        let dec = policy
            .decide(&q, JoinStrategy::LeftDeep, &blind, &learned, &blowing, 64)
            .expect("blowup must fire even on a blind plan");
        assert_eq!(dec.strategy, JoinStrategy::Multiway);
    }

    #[test]
    fn no_data_never_replans() {
        let q = chain();
        let policy = ReplanPolicy::default();
        assert!(policy
            .decide(
                &q,
                JoinStrategy::LeftDeep,
                &Cardinalities::none(),
                &LearnedCardinalities::new(),
                &DataflowStats::default(),
                1_000,
            )
            .is_none());
    }

    #[test]
    fn degree_sketch_tracks_post_state_presence() {
        let q = chain();
        let r = sym("ad_R");
        let mut db: Database<i64> = Database::new();
        db.create(r, q.atoms[0].schema.clone());
        let mut learned = LearnedCardinalities::new();
        let mut batch = vec![
            Update::insert(r, tup![0i64, 1i64]),
            Update::insert(r, tup![0i64, 2i64]),
            Update::insert(r, tup![5i64, 1i64]),
        ];
        db.apply_batch(&batch);
        learned.observe_batch(&db, &q, &batch);
        let sketch = learned.degree_sketch(r).unwrap();
        assert_eq!(sketch.degree(&Value::from(0i64)), 2);
        assert_eq!(sketch.max_degree(), 2);
        assert_eq!(learned.max_degree_any(), 2);
        assert_eq!(sketch.keys_at_least(2), 1);
        // A delete drops the pair; multiplicity bumps don't change degree.
        batch = vec![
            Update::delete(r, tup![0i64, 2i64]),
            Update::insert(r, tup![5i64, 1i64]),
        ];
        db.apply_batch(&batch);
        learned.observe_batch(&db, &q, &batch);
        let sketch = learned.degree_sketch(r).unwrap();
        assert_eq!(sketch.degree(&Value::from(0i64)), 1);
        assert_eq!(sketch.degree(&Value::from(5i64)), 1);
        // Rebuilding from the base gives the identical sketch (and the
        // identical sorted export), so recovery re-learns nothing.
        let observed = learned.export_degrees();
        let mut rebuilt = LearnedCardinalities::new();
        rebuilt.rebuild_degrees(&db, &q);
        assert_eq!(rebuilt.export_degrees(), observed);
    }

    #[test]
    fn family_shift_follows_learned_skew_with_hysteresis() {
        let q = chain();
        let policy = ReplanPolicy {
            min_batches_between: 4,
            ..ReplanPolicy::default()
        };
        let r = sym("ad_R");
        let mut db: Database<i64> = Database::new();
        for atom in &q.atoms {
            db.create(atom.name, atom.schema.clone());
        }
        // 100 tuples, all sharing one hub key: d_max = 100 ≫ 4·√100.
        let batch: Vec<Update<i64>> = (0..100i64)
            .map(|i| Update::insert(r, tup![0i64, i]))
            .collect();
        db.apply_batch(&batch);
        let mut learned = LearnedCardinalities::new();
        learned.refresh(&db, &q);
        learned.observe_batch(&db, &q, &batch);

        // Ineligible queries never shift family.
        assert!(policy
            .decide_family(EngineFamily::Dataflow, false, &learned, 100, 100)
            .is_none());
        // The double gate applies: young clock or thin window → stand.
        assert!(policy
            .decide_family(EngineFamily::Dataflow, true, &learned, 100, 2)
            .is_none());
        assert!(policy
            .decide_family(EngineFamily::Dataflow, true, &learned, 3, 100)
            .is_none());
        let dec = policy
            .decide_family(EngineFamily::Dataflow, true, &learned, 100, 100)
            .expect("hub skew past both gates must shift the family");
        assert_eq!(dec.to, EngineFamily::HeavyLight);
        assert!(dec.reason.contains("heavy-light"));
        assert_eq!(dec.cards.get(r), 100);
        // Already heavy-light: the same skew is where we want to be.
        assert!(policy
            .decide_family(EngineFamily::HeavyLight, true, &learned, 100, 100)
            .is_none());

        // Skew subsides (degree-1 keys only): heavy-light returns to
        // dataflow, but dataflow itself sits happily in the band.
        let mut flat_db: Database<i64> = Database::new();
        for atom in &q.atoms {
            flat_db.create(atom.name, atom.schema.clone());
        }
        let flat: Vec<Update<i64>> = (0..100i64)
            .map(|i| Update::insert(r, tup![i, i + 1]))
            .collect();
        flat_db.apply_batch(&flat);
        let mut calm = LearnedCardinalities::new();
        calm.refresh(&flat_db, &q);
        calm.observe_batch(&flat_db, &q, &flat);
        assert_eq!(calm.max_degree_any(), 1);
        let back = policy
            .decide_family(EngineFamily::HeavyLight, true, &calm, 100, 100)
            .expect("flat degrees must return to dataflow");
        assert_eq!(back.to, EngineFamily::Dataflow);
        assert!(policy
            .decide_family(EngineFamily::Dataflow, true, &calm, 100, 100)
            .is_none());
    }

    /// The end-to-end mechanism behind the policy: a blind-built engine
    /// re-lowered with learned cards converges to the plan a populated
    /// build would have produced.
    #[test]
    fn replan_with_cards_matches_populated_build() {
        let q = chain();
        let (rn, sn, tn) = (sym("ad_R"), sym("ad_S"), sym("ad_T"));
        let mut blind =
            crate::DataflowEngine::<i64>::new(q.clone(), &Database::new(), lift_one).unwrap();
        let mut db: Database<i64> = Database::new();
        for atom in &q.atoms {
            db.create(atom.name, atom.schema.clone());
        }
        let mut learned = LearnedCardinalities::new();
        let mut batch = Vec::new();
        for i in 0..40i64 {
            batch.push(Update::insert(rn, tup![i, i + 1]));
        }
        for i in 0..10i64 {
            batch.push(Update::insert(sn, tup![i + 1, i + 2]));
        }
        batch.push(Update::insert(tn, tup![2i64, 3i64]));
        blind.apply_batch(&batch).unwrap();
        db.apply_batch(&batch);
        learned.refresh(&db, &q);

        blind
            .replan_with_cards(&db, JoinStrategy::LeftDeep, learned.to_cardinalities())
            .unwrap();
        let populated = crate::DataflowEngine::<i64>::new_with_strategy(
            q,
            &db,
            lift_one,
            JoinStrategy::LeftDeep,
        )
        .unwrap();
        assert_eq!(blind.plan(), populated.plan());
        assert_eq!(blind.resolved_strategy(), JoinStrategy::LeftDeep);
    }
}
