//! The dataflow-backed [`Maintainer`]: the repo's generic fallback engine.

use crate::cost::Cardinalities;
use crate::graph::{Dataflow, DataflowStats};
use crate::planner::{lower_with, JoinStrategy};
use ivm_core::{EngineError, Maintainer};
use ivm_data::ops::Lift;
use ivm_data::{Batch, Database, FxHashSet, Relation, Sym, Tuple, Update};
use ivm_query::Query;
use ivm_ring::Semiring;

/// Maintains an arbitrary conjunctive query with aggregates — including
/// cyclic ones no specialized engine in `ivm-core` accepts — by batched
/// delta propagation through a lowered operator DAG.
///
/// Construction never rejects a query shape: where `EagerFactEngine`
/// demands q-hierarchical queries, this engine accepts anything
/// `ivm_query::Query` can express and trades the constant-time guarantees
/// for O(|δQ|)-style per-batch work. Updates to static atoms (Sec. 4.5)
/// are rejected at [`apply`](Maintainer::apply) time.
pub struct DataflowEngine<R> {
    query: Query,
    dataflow: Dataflow<R>,
    lift: Lift<R>,
    strategy: JoinStrategy,
    /// The concrete plan the strategy resolved to, recorded at lowering
    /// time. [`Self::resolved_strategy`] reports this field rather than
    /// recomputing through the planner: after a cardinality-driven
    /// re-lowering the plan actually running can differ from what
    /// `planner::resolve_strategy` would derive from the query alone.
    resolved: JoinStrategy,
    /// The cardinality snapshot the current plan's orders were derived
    /// from — what the replan policy compares learned counts against.
    lowered_cards: Cardinalities,
    /// Counters accumulated by dataflows discarded in re-plans; `stats()`
    /// reports `carried ⊕ current`, so the engine's history survives
    /// strategy switches instead of silently resetting.
    carried_stats: DataflowStats,
    dynamics: FxHashSet<Sym>,
    statics: FxHashSet<Sym>,
    /// Attached telemetry `(registry, name prefix)`, kept here so a
    /// re-plan can re-attach the fresh dataflow to the same series.
    obs: Option<(ivm_obs::MetricsRegistry, String)>,
}

impl<R: Semiring> DataflowEngine<R> {
    /// Lower `query` with [`JoinStrategy::Auto`] (left-deep when acyclic,
    /// worst-case-optimal multiway when cyclic) ordered by `db`'s relation
    /// cardinalities, then preprocess by streaming `db`'s contents for
    /// every atom relation (static and dynamic) through the dataflow.
    pub fn new(query: Query, db: &Database<R>, lift: Lift<R>) -> Result<Self, EngineError> {
        Self::new_with_strategy(query, db, lift, JoinStrategy::Auto)
    }

    /// [`Self::new`] with an explicit join plan — the equivalence tests
    /// run the same query through both plans and cross-check them.
    pub fn new_with_strategy(
        query: Query,
        db: &Database<R>,
        lift: Lift<R>,
        strategy: JoinStrategy,
    ) -> Result<Self, EngineError> {
        let cards = Cardinalities::from_db(db, &query);
        Self::new_with_cards(query, db, lift, strategy, cards)
    }

    /// [`Self::new_with_strategy`] ordering the plan by an explicit
    /// cardinality snapshot instead of `db`'s current sizes — the
    /// adaptive replanning path lowers from *learned* counts here, and
    /// records the snapshot so a later policy decision can compare the
    /// orders this plan was actually derived from against fresh ones.
    pub fn new_with_cards(
        query: Query,
        db: &Database<R>,
        lift: Lift<R>,
        strategy: JoinStrategy,
        cards: Cardinalities,
    ) -> Result<Self, EngineError> {
        let mut dataflow = lower_with(&query, lift, strategy, &cards);

        let mut dynamics: FxHashSet<Sym> = FxHashSet::default();
        let mut statics: FxHashSet<Sym> = FxHashSet::default();
        for atom in &query.atoms {
            if atom.dynamic {
                dynamics.insert(atom.name);
            } else {
                statics.insert(atom.name);
            }
        }
        // A relation that is dynamic in any atom stays updatable.
        statics.retain(|s| !dynamics.contains(s));

        let mut seen: FxHashSet<Sym> = FxHashSet::default();
        let mut init: Batch<R> = Vec::new();
        for atom in &query.atoms {
            if seen.insert(atom.name) {
                if let Some(rel) = db.get(atom.name) {
                    for (t, r) in rel.iter() {
                        init.push(Update::with_payload(atom.name, t.clone(), r.clone()));
                    }
                }
            }
        }
        dataflow.apply_batch(&init)?;

        let resolved = crate::planner::resolve_strategy(&query, strategy);
        Ok(DataflowEngine {
            query,
            dataflow,
            lift,
            strategy,
            resolved,
            lowered_cards: cards,
            carried_stats: DataflowStats::default(),
            dynamics,
            statics,
            obs: None,
        })
    }

    /// Attach a metrics registry: batches record per-operator apply time
    /// and tuple counts plus cumulative [`DataflowStats`] mirrors under
    /// `{prefix}.*` (see [`Dataflow::attach_obs`]). The attachment
    /// survives re-plans — the fresh dataflow re-binds to the same
    /// series, so operator ids restart with the new plan while the
    /// engine-level counters keep accumulating.
    pub fn observe(&mut self, registry: &ivm_obs::MetricsRegistry, prefix: &str) {
        self.dataflow.attach_obs(registry, prefix);
        self.obs = Some((registry.clone(), prefix.to_string()));
    }

    /// Re-lower the query onto a fresh plan — e.g. after the cardinality
    /// landscape shifted, or to switch [`JoinStrategy`] mid-stream — and
    /// rebuild operator state by streaming `db` (the *current* base state;
    /// the engine materializes only its own indexes, so the caller owns
    /// the ground truth, exactly as in [`Self::new`]).
    ///
    /// Counters accumulated so far are carried over: [`Self::stats`]
    /// reports the engine's whole history across any number of re-plans,
    /// except the one-off preprocessing batch of the new plan, which is
    /// deliberately not double-counted as stream work.
    pub fn replan_with_strategy(
        &mut self,
        db: &Database<R>,
        strategy: JoinStrategy,
    ) -> Result<(), EngineError> {
        let cards = Cardinalities::from_db(db, &self.query);
        self.replan_with_cards(db, strategy, cards)
    }

    /// [`Self::replan_with_strategy`] ordering the fresh plan by an
    /// explicit cardinality snapshot — the adaptive path re-derives atom
    /// and variable orders from *learned* counts here, not just from
    /// whatever `db` happens to hold at replay time (the two coincide for
    /// an exact mirror, but the caller owns that choice).
    pub fn replan_with_cards(
        &mut self,
        db: &Database<R>,
        strategy: JoinStrategy,
        cards: Cardinalities,
    ) -> Result<(), EngineError> {
        let mut carried = self.carried_stats;
        carried.merge(&self.dataflow.stats());
        let mut fresh = Self::new_with_cards(self.query.clone(), db, self.lift, strategy, cards)?;
        // The preprocessing replay inflated the fresh dataflow's counters;
        // subtracting its own snapshot would lose it entirely, so instead
        // carry the *old* history and let the fresh dataflow count from
        // its post-preprocessing state (its constructor counters describe
        // preprocessing, not the update stream — zero them out).
        fresh.dataflow.reset_stats();
        if let Some((registry, prefix)) = &self.obs {
            fresh.dataflow.attach_obs(registry, prefix);
        }
        self.dataflow = fresh.dataflow;
        self.strategy = strategy;
        self.resolved = fresh.resolved;
        self.lowered_cards = fresh.lowered_cards;
        self.carried_stats = carried;
        Ok(())
    }

    /// The join strategy the current plan was lowered with (possibly
    /// [`JoinStrategy::Auto`], as requested by the caller).
    pub fn strategy(&self) -> JoinStrategy {
        self.strategy
    }

    /// The concrete plan the current strategy resolved to — never `Auto`.
    /// Recorded at lowering time rather than recomputed through
    /// `planner::resolve_strategy` on every call: after a learned-
    /// cardinality re-lowering the plan running can legitimately differ
    /// from what the query's shape alone would resolve to (e.g. a
    /// blowup-triggered switch to `Multiway` on an α-acyclic query), and
    /// this must report what was lowered, not what would be.
    pub fn resolved_strategy(&self) -> JoinStrategy {
        self.resolved
    }

    /// The cardinality snapshot the current plan's atom/variable orders
    /// were derived from (empty for a blind build over an empty
    /// database). The replan policy compares these against learned
    /// counts to decide whether a re-lowering pays for itself.
    pub fn lowered_cards(&self) -> &Cardinalities {
        &self.lowered_cards
    }

    /// Apply an already consolidated batch without re-consolidating — the
    /// sharded runtime routes consolidated sub-batches, so flattening them
    /// back to updates just to re-hash every entry would be pure waste.
    /// Same validation as [`Self::apply_batch`].
    pub fn apply_delta_batch(
        &mut self,
        batch: &crate::DeltaBatch<R>,
    ) -> Result<Relation<R>, EngineError> {
        for rel in batch.relations() {
            if self.statics.contains(&rel) {
                return Err(EngineError::StaticRelation(rel));
            }
            if !self.dynamics.contains(&rel) {
                return Err(EngineError::UnknownRelation(rel));
            }
        }
        // The consolidated entries are the updates received at this
        // boundary; count them so `updates_in` stays an ingestion total.
        self.dataflow.record_updates_in(batch.len() as u64);
        self.dataflow.apply_delta_batch(batch)
    }

    /// The maintained output view.
    pub fn output_relation(&self) -> &Relation<R> {
        self.dataflow.output()
    }

    /// Propagation counters (batches, consolidation, sink deltas),
    /// accumulated across re-plans.
    pub fn stats(&self) -> DataflowStats {
        self.carried_stats.merged(&self.dataflow.stats())
    }

    /// The lowered plan, one line per operator.
    pub fn plan(&self) -> String {
        self.dataflow.describe()
    }

    /// Join this engine's multiway stores (slots fed directly by base
    /// relations) onto a [`StoreHub`] shared with other engines, so
    /// overlapping relations are stored once fleet-wide. Returns the
    /// number of dedup hits. Shared slots stop advancing in-engine; the
    /// hub owner must call [`StoreHub::advance_batch`] once per batch
    /// after every member engine has processed it.
    pub fn share_stores(&mut self, hub: &crate::StoreHub<R>) -> usize {
        self.dataflow.share_multiway_stores(hub)
    }

    /// Tuples resident in engine-owned state (output view, join
    /// indexes, non-hub multiway stores). Hub-shared stores are counted
    /// by [`StoreHub::stored_tuples`], not here.
    pub fn resident_tuples(&self) -> usize {
        self.dataflow.resident_tuples()
    }
}

impl<R: Semiring> Maintainer<R> for DataflowEngine<R> {
    fn query(&self) -> &Query {
        &self.query
    }

    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        self.apply_batch(std::slice::from_ref(upd)).map(|_| ())
    }

    /// One consolidated delta propagation through the lowered DAG; the
    /// returned relation is the batch's exact output delta. Same final
    /// state as applying each update individually (ring
    /// order-independence), at a fraction of the work when the batch has
    /// locality. The whole batch is validated before anything propagates,
    /// so rejection is atomic. This *is* the engine's native ingestion
    /// path — the trait method, not a shadowing inherent duplicate.
    fn apply_batch(&mut self, batch: &[Update<R>]) -> Result<Relation<R>, EngineError> {
        for u in batch {
            if self.statics.contains(&u.relation) {
                return Err(EngineError::StaticRelation(u.relation));
            }
            if !self.dynamics.contains(&u.relation) {
                return Err(EngineError::UnknownRelation(u.relation));
            }
        }
        self.dataflow.apply_batch(batch)
    }

    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R)) {
        for (t, r) in self.dataflow.output().iter() {
            f(t, r);
        }
    }
}

impl<R: Semiring> std::fmt::Debug for DataflowEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataflowEngine")
            .field("query", &self.query)
            .field("nodes", &self.dataflow.node_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::{eval_join_aggregate, lift_one};
    use ivm_data::{sym, tup, vars, Schema};
    use ivm_query::Atom;

    #[test]
    fn agrees_with_oracle_on_fig3() {
        let q = ivm_query::examples::fig3_query();
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        let mut eng = DataflowEngine::<i64>::new(q.clone(), &Database::new(), lift_one).unwrap();
        let mut r = Relation::new(q.atoms[0].schema.clone());
        let mut s = Relation::new(q.atoms[1].schema.clone());
        for i in 0..20i64 {
            let t = tup![i % 4, i % 3];
            r.apply(t.clone(), &1);
            eng.apply(&Update::insert(rn, t)).unwrap();
            let t = tup![i % 3, i % 5];
            s.apply(t.clone(), &1);
            eng.apply(&Update::insert(sn, t)).unwrap();
        }
        let expect = eval_join_aggregate(&[&r, &s], &q.free, lift_one);
        let got = eng.output();
        assert_eq!(got.len(), expect.len());
        for (t, p) in expect.iter() {
            assert_eq!(&got.get(t), p, "at {t:?}");
        }
    }

    /// The cyclic self-join triangle query `Q() = Σ E(a,b) E(b,c) E(c,a)`
    /// over ONE edge relation — outside every specialized engine's class.
    fn triangle_self_join() -> Query {
        let [a, b, c] = vars(["dfe_tA", "dfe_tB", "dfe_tC"]);
        let e = sym("dfe_tE");
        Query::new(
            "dfe_tri",
            [],
            vec![
                Atom::new(e, [a, b]),
                Atom::new(e, [b, c]),
                Atom::new(e, [c, a]),
            ],
        )
    }

    #[test]
    fn maintains_cyclic_triangle_count() {
        // Each directed triangle is counted once per rotation of (a,b,c),
        // i.e. three derivations.
        let q = triangle_self_join();
        let e = q.atoms[0].name;
        let mut eng = DataflowEngine::<i64>::new(q, &Database::new(), lift_one).unwrap();
        // Triangle 1-2-3 plus a dangling edge.
        for (a, b) in [(1i64, 2i64), (2, 3), (3, 1), (1, 9)] {
            eng.apply(&Update::insert(e, tup![a, b])).unwrap();
        }
        assert_eq!(eng.output_relation().get(&Tuple::empty()), 3);
        // A second triangle (1-2-4) via the shared edge (1,2).
        for (a, b) in [(2i64, 4i64), (4, 1)] {
            eng.apply(&Update::insert(e, tup![a, b])).unwrap();
        }
        assert_eq!(eng.output_relation().get(&Tuple::empty()), 6);
        // Deleting an edge of neither triangle changes nothing...
        eng.apply(&Update::delete(e, tup![1i64, 9i64])).unwrap();
        assert_eq!(eng.output_relation().get(&Tuple::empty()), 6);
        // ...deleting a triangle edge removes exactly that triangle.
        eng.apply(&Update::delete(e, tup![2i64, 3i64])).unwrap();
        assert_eq!(eng.output_relation().get(&Tuple::empty()), 3);
    }

    #[test]
    fn batch_equals_singles() {
        let q = triangle_self_join();
        let e = q.atoms[0].name;
        let updates: Vec<Update<i64>> = (0..30i64)
            .map(|i| Update::insert(e, tup![i % 5, (i * 3 + 1) % 5]))
            .collect();
        let mut one = DataflowEngine::<i64>::new(q.clone(), &Database::new(), lift_one).unwrap();
        let mut many = DataflowEngine::<i64>::new(q, &Database::new(), lift_one).unwrap();
        for u in &updates {
            one.apply(u).unwrap();
        }
        many.apply_batch(&updates).unwrap();
        assert_eq!(
            one.output_relation().get(&Tuple::empty()),
            many.output_relation().get(&Tuple::empty())
        );
        assert!(many.stats().batches < one.stats().batches);
    }

    #[test]
    fn preprocesses_initial_database() {
        let q = ivm_query::examples::fig3_query();
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        let mut db: Database<i64> = Database::new();
        db.create(rn, q.atoms[0].schema.clone());
        db.create(sn, q.atoms[1].schema.clone());
        db.apply(&Update::insert(rn, tup![1i64, 10i64]));
        db.apply(&Update::insert(sn, tup![1i64, 20i64]));
        let mut eng = DataflowEngine::<i64>::new(q, &db, lift_one).unwrap();
        assert_eq!(eng.output().get(&tup![1i64, 10i64, 20i64]), 1);
    }

    /// A re-plan must not reset the engine's counters (they feed bench
    /// trajectories and the sharded engine's aggregated stats), and the
    /// new plan must agree with the old state.
    #[test]
    fn stats_survive_replan_and_strategies_agree() {
        let q = triangle_self_join();
        let e = q.atoms[0].name;
        let mut db: Database<i64> = Database::new();
        db.create(e, q.atoms[0].schema.clone());
        let mut eng =
            DataflowEngine::<i64>::new_with_strategy(q, &db, lift_one, JoinStrategy::Multiway)
                .unwrap();
        assert_eq!(eng.strategy(), JoinStrategy::Multiway);
        let edges = [(1i64, 2i64), (2, 3), (3, 1), (2, 4), (4, 1), (1, 9)];
        for (a, b) in edges {
            let u = Update::insert(e, tup![a, b]);
            db.apply(&u);
            eng.apply(&u).unwrap();
        }
        let before = eng.stats();
        assert!(before.batches >= edges.len() as u64);
        assert!(before.multiway_seeds > 0);
        let count_before = eng.output_relation().get(&Tuple::empty());

        // Switch to the left-deep plan, replaying the current base state.
        eng.replan_with_strategy(&db, JoinStrategy::LeftDeep)
            .unwrap();
        assert_eq!(eng.strategy(), JoinStrategy::LeftDeep);
        let after = eng.stats();
        assert_eq!(
            eng.output_relation().get(&Tuple::empty()),
            count_before,
            "re-planned engine must reproduce the maintained output"
        );
        // History survived: every counter is at least its pre-replan value.
        assert!(after.batches >= before.batches);
        assert_eq!(after.updates_in, before.updates_in);
        assert_eq!(after.multiway_seeds, before.multiway_seeds);

        // And the new plan keeps counting on top of the carried history.
        eng.apply(&Update::delete(e, tup![2i64, 3i64])).unwrap();
        let later = eng.stats();
        assert_eq!(later.updates_in, after.updates_in + 1);
        assert!(
            later.binary_join_tuples > after.binary_join_tuples,
            "left-deep deltas materialize binary intermediates"
        );
        assert_eq!(eng.output_relation().get(&Tuple::empty()), count_before - 3);
    }

    #[test]
    fn apply_delta_batch_skips_reconsolidation_but_validates() {
        use crate::DeltaBatch;
        let q = ivm_query::examples::fig3_query();
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        let mut via_updates =
            DataflowEngine::<i64>::new(q.clone(), &Database::new(), lift_one).unwrap();
        let mut via_delta = DataflowEngine::<i64>::new(q, &Database::new(), lift_one).unwrap();
        let ups: Vec<Update<i64>> = vec![
            Update::insert(rn, tup![1i64, 10i64]),
            Update::insert(sn, tup![1i64, 20i64]),
            Update::insert(rn, tup![1i64, 10i64]),
        ];
        let d1 = via_updates.apply_batch(&ups).unwrap();
        let d2 = via_delta
            .apply_delta_batch(&DeltaBatch::from_updates(&ups))
            .unwrap();
        assert_eq!(d1.len(), d2.len());
        for (t, p) in d1.iter() {
            assert_eq!(&d2.get(t), p, "at {t:?}");
        }
        let bad = DeltaBatch::from_updates(&[Update::<i64>::insert(sym("f3_nope"), tup![1i64])]);
        assert_eq!(
            via_delta.apply_delta_batch(&bad).unwrap_err(),
            EngineError::UnknownRelation(sym("f3_nope"))
        );
    }

    #[test]
    fn engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DataflowEngine<i64>>();
    }

    #[test]
    fn static_and_unknown_relations_rejected() {
        let [x, y, z] = vars(["dfe_X", "dfe_Y", "dfe_Z"]);
        let (rn, sn) = (sym("dfe_R"), sym("dfe_S"));
        let q = Query::new(
            "dfe_mixed",
            [x],
            vec![
                Atom::new(rn, [x, y]),
                Atom::new_static(sn, Schema::from([y, z])),
            ],
        );
        let mut eng = DataflowEngine::<i64>::new(q, &Database::new(), lift_one).unwrap();
        assert_eq!(
            eng.apply(&Update::insert(sn, tup![1i64, 2i64])),
            Err(EngineError::StaticRelation(sn))
        );
        assert_eq!(
            eng.apply(&Update::insert(sym("dfe_nope"), tup![1i64])),
            Err(EngineError::UnknownRelation(sym("dfe_nope")))
        );
        eng.apply(&Update::insert(rn, tup![1i64, 2i64])).unwrap();
    }

    #[test]
    fn static_relation_contents_join_via_preprocessing() {
        let [x, y, z] = vars(["dfs_X", "dfs_Y", "dfs_Z"]);
        let (rn, sn) = (sym("dfs_R"), sym("dfs_S"));
        let q = Query::new(
            "dfs_mixed",
            [x, z],
            vec![
                Atom::new(rn, [x, y]),
                Atom::new_static(sn, Schema::from([y, z])),
            ],
        );
        let mut db: Database<i64> = Database::new();
        db.create(sn, Schema::from([y, z]));
        db.apply(&Update::insert(sn, tup![7i64, 100i64]));
        let mut eng = DataflowEngine::<i64>::new(q, &db, lift_one).unwrap();
        eng.apply(&Update::insert(rn, tup![1i64, 7i64])).unwrap();
        assert_eq!(eng.output().get(&tup![1i64, 100i64]), 1);
    }
}
