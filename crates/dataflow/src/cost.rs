//! Cost-based plan ordering with deterministic tie-breaking.
//!
//! The planner used to order atoms syntactically (the order they appear in
//! the query), which made plan quality an accident of query spelling and
//! plan *stability* an accident of nothing at all. This module centralizes
//! both orderings the planner needs:
//!
//! * [`atom_order`] — the join order of the left-deep `DeltaJoin` chain
//!   for acyclic queries: start from the smallest relation, then greedily
//!   extend by the most-connected (then smallest) atom, so chains stay
//!   connected and avoid accidental Cartesian products;
//! * [`variable_order`] — the global elimination order of the
//!   [`MultiwayJoin`](crate::Dataflow::add_multiway_join) node for cyclic
//!   queries: most-constrained variables first (highest atom degree, then
//!   lowest fan-out estimate from the containing relations' cardinalities).
//!
//! Every comparison ends in a deterministic tie-break (cardinality, then
//! first-occurrence index), so the same query and statistics always
//! produce byte-identical plans across runs and platforms — a precondition
//! for comparing recorded bench numbers over time.

use ivm_data::{Database, FxHashMap, Schema, Sym};
use ivm_query::Query;
use ivm_ring::Semiring;

/// Relation cardinality estimates feeding the orderings. Missing relations
/// are treated as unknown (and sort after every known size).
#[derive(Clone, Debug, Default)]
pub struct Cardinalities {
    sizes: FxHashMap<Sym, usize>,
}

impl Cardinalities {
    /// No statistics: every ordering falls back to pure tie-breaking,
    /// which reproduces a stable syntactic-like order.
    pub fn none() -> Self {
        Cardinalities::default()
    }

    /// Record one relation's size.
    pub fn set(&mut self, relation: Sym, size: usize) -> &mut Self {
        self.sizes.insert(relation, size);
        self
    }

    /// Snapshot the sizes of a query's relations from a database.
    pub fn from_db<R: Semiring>(db: &Database<R>, q: &Query) -> Self {
        let mut cards = Cardinalities::default();
        for atom in &q.atoms {
            if let Some(rel) = db.get(atom.name) {
                cards.set(atom.name, rel.len());
            }
        }
        cards
    }

    /// The estimate for `relation`, `usize::MAX` when unknown (unknown
    /// relations order last among equals).
    pub fn get(&self, relation: Sym) -> usize {
        self.sizes.get(&relation).copied().unwrap_or(usize::MAX)
    }

    /// The recorded estimate for `relation`, `None` when never recorded.
    /// Unlike [`Self::get`] this distinguishes "unknown" from "known
    /// huge" — the replan policy treats a plan lowered from no statistics
    /// (or an empty database) as *blind* rather than as infinitely
    /// expensive.
    pub fn known(&self, relation: Sym) -> Option<usize> {
        self.sizes.get(&relation).copied()
    }

    /// Whether every relation of `q` is unknown or recorded as empty —
    /// i.e. the orderings derived from these statistics were pure
    /// tie-breaking, not informed choices. A session built before any
    /// data arrives (the common streaming pattern) is in exactly this
    /// state.
    pub fn is_blind_for(&self, q: &Query) -> bool {
        q.atoms
            .iter()
            .all(|a| self.known(a.name).is_none_or(|n| n == 0))
    }
}

/// The size estimate feeding the cost proxies: unknown relations count as
/// empty (the optimistic reading a blind build actually uses), and every
/// known size is clamped to ≥ 1 so products stay meaningful.
fn est(cards: &Cardinalities, rel: Sym) -> f64 {
    cards.known(rel).unwrap_or(0).max(1) as f64
}

/// A coarse predicted propagation cost of the left-deep chain `order`
/// under `cards`: the sum of estimated intermediate sizes along the
/// chain. Joining an atom that shares variables with the bound prefix is
/// estimated at `max(prefix, |atom|)` (key-join-like: the result is
/// bounded by the larger side far more often than by their product);
/// an atom sharing nothing multiplies (a true Cartesian step).
///
/// This is a *ranking* proxy, not a cardinality estimator: it exists so
/// the replan policy can compare two orders of the same chain under the
/// same statistics — e.g. the order a blind build picked against the
/// order [`atom_order`] would pick from learned counts — with a
/// deterministic, monotone answer.
pub fn left_deep_cost(q: &Query, order: &[usize], cards: &Cardinalities) -> f64 {
    let mut cost = 0.0;
    let mut prefix = 0.0;
    let mut bound = Schema::empty();
    for (k, &ai) in order.iter().enumerate() {
        let atom = &q.atoms[ai];
        let size = est(cards, atom.name);
        prefix = if k == 0 {
            size
        } else if atom.schema.intersect(&bound).arity() > 0 {
            prefix.max(size)
        } else {
            prefix * size
        };
        cost += prefix;
        bound = bound.union(&atom.schema);
    }
    cost
}

/// A coarse predicted search cost of a multiway variable elimination
/// along `var_order` under `cards`: the sum over *internal* levels of the
/// partial-binding frontier estimate, where each variable's fan-out is
/// the smallest containing relation (the candidate set is an intersection
/// and the smallest list bounds it). The deepest level is excluded — its
/// binding count is the join output, which no order changes; what the
/// order controls is how early small candidate sets prune the frontier.
///
/// Same contract as [`left_deep_cost`]: a deterministic ranking proxy for
/// comparing variable orders, not an estimator of absolute work.
pub fn multiway_cost(q: &Query, var_order: &Schema, cards: &Cardinalities) -> f64 {
    let fan_out = |v: Sym| {
        q.atoms
            .iter()
            .filter(|a| a.schema.contains(v))
            .map(|a| est(cards, a.name))
            .fold(f64::INFINITY, f64::min)
    };
    let vars = var_order.vars();
    let mut cost = 0.0;
    let mut frontier = 1.0;
    for &v in vars.iter().take(vars.len().saturating_sub(1)) {
        let f = fan_out(v);
        frontier *= if f.is_finite() { f } else { 1.0 };
        cost += frontier;
    }
    cost
}

/// The left-deep join order: atom indices into `q.atoms`.
///
/// Greedy: open with the smallest relation, then repeatedly append the
/// remaining atom sharing the most variables with the atoms picked so far
/// (ties: smaller relation, then lower atom index). Atoms sharing nothing
/// are only picked once nothing connected remains, so Cartesian products
/// are deferred as far as the hypergraph allows.
pub fn atom_order(q: &Query, cards: &Cardinalities) -> Vec<usize> {
    let n = q.atoms.len();
    let card = |i: usize| cards.get(q.atoms[i].name);
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound = Schema::empty();
    while !remaining.is_empty() {
        let pick = *remaining
            .iter()
            .min_by_key(|&&i| {
                let shared = q.atoms[i].schema.intersect(&bound).arity();
                // More shared variables first, then smaller, then earlier.
                (std::cmp::Reverse(shared), card(i), i)
            })
            .expect("remaining is non-empty");
        bound = bound.union(&q.atoms[pick].schema);
        order.push(pick);
        remaining.retain(|&i| i != pick);
    }
    order
}

/// The global variable-elimination order for a multiway join.
///
/// Most-constrained first: variables touching more atoms lead (their
/// candidate sets are intersections of more lists), ties broken by the
/// smallest cardinality among the containing relations (a cheap fan-out
/// estimate — values drawn from small relations prune earlier), then by
/// first occurrence in the query.
pub fn variable_order(q: &Query, cards: &Cardinalities) -> Schema {
    let all = q.variables();
    let mut vars: Vec<(usize, Sym)> = all.vars().iter().copied().enumerate().collect();
    let stats = |v: Sym| {
        let mut degree = 0usize;
        let mut min_card = usize::MAX;
        for atom in &q.atoms {
            if atom.schema.contains(v) {
                degree += 1;
                min_card = min_card.min(cards.get(atom.name));
            }
        }
        (degree, min_card)
    };
    vars.sort_by_key(|&(first_occurrence, v)| {
        let (degree, min_card) = stats(v);
        (std::cmp::Reverse(degree), min_card, first_occurrence)
    });
    Schema::new(vars.into_iter().map(|(_, v)| v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::{sym, vars};
    use ivm_query::Atom;

    fn chain() -> Query {
        // R(a,b)·S(b,c)·T(c,d)
        let [a, b, c, d] = vars(["co_A", "co_B", "co_C", "co_D"]);
        Query::new(
            "co_chain",
            [a, d],
            vec![
                Atom::new(sym("co_R"), [a, b]),
                Atom::new(sym("co_S"), [b, c]),
                Atom::new(sym("co_T"), [c, d]),
            ],
        )
    }

    #[test]
    fn no_stats_is_stable_syntactic_order() {
        let q = chain();
        let order = atom_order(&q, &Cardinalities::none());
        assert_eq!(order, vec![0, 1, 2]);
        // Deterministic: identical inputs, identical plans.
        assert_eq!(order, atom_order(&q, &Cardinalities::none()));
    }

    #[test]
    fn smallest_relation_opens_and_chain_stays_connected() {
        let q = chain();
        let mut cards = Cardinalities::none();
        cards
            .set(sym("co_R"), 10_000)
            .set(sym("co_S"), 5_000)
            .set(sym("co_T"), 10);
        // T is smallest; S connects to it via c; R only connects via S.
        assert_eq!(atom_order(&q, &cards), vec![2, 1, 0]);
    }

    #[test]
    fn connectivity_beats_cardinality() {
        // R(a,b) tiny, U(x) tinier but disconnected: U must not interpose.
        let [a, b, x] = vars(["co_A2", "co_B2", "co_X2"]);
        let q = Query::new(
            "co_disc",
            [a, x],
            vec![
                Atom::new(sym("co_R2"), [a, b]),
                Atom::new(sym("co_S2"), [b, x]),
                Atom::new(sym("co_U2"), [x]),
            ],
        );
        let mut cards = Cardinalities::none();
        cards
            .set(sym("co_R2"), 100)
            .set(sym("co_S2"), 1_000)
            .set(sym("co_U2"), 5);
        // U opens (smallest), then S (shares x), then R (shares b).
        assert_eq!(atom_order(&q, &cards), vec![2, 1, 0]);
    }

    #[test]
    fn variable_order_puts_high_degree_first() {
        // Star: x occurs in all three atoms, the leaves once each.
        let [x, y, z, w] = vars(["co_SX", "co_SY", "co_SZ", "co_SW"]);
        let q = Query::new(
            "co_star",
            [x, y, z, w],
            vec![
                Atom::new(sym("co_SR"), [x, y]),
                Atom::new(sym("co_SS"), [x, z]),
                Atom::new(sym("co_ST"), [x, w]),
            ],
        );
        let vo = variable_order(&q, &Cardinalities::none());
        assert_eq!(vo.vars()[0], x);
        assert_eq!(vo, Schema::from([x, y, z, w]));
    }

    #[test]
    fn variable_order_ties_break_by_fanout_then_occurrence() {
        // Triangle: every variable has degree 2; with S tiny, its
        // variables (b, c) lead, ordered by first occurrence.
        let [a, b, c] = vars(["co_TA", "co_TB", "co_TC"]);
        let q = Query::new(
            "co_tri",
            [],
            vec![
                Atom::new(sym("co_TR"), [a, b]),
                Atom::new(sym("co_TS"), [b, c]),
                Atom::new(sym("co_TT"), [c, a]),
            ],
        );
        assert_eq!(
            variable_order(&q, &Cardinalities::none()),
            Schema::from([a, b, c])
        );
        let mut cards = Cardinalities::none();
        cards
            .set(sym("co_TR"), 1_000)
            .set(sym("co_TS"), 10)
            .set(sym("co_TT"), 1_000);
        assert_eq!(variable_order(&q, &cards), Schema::from([b, c, a]));
    }

    #[test]
    fn orders_cover_all_atoms_and_variables() {
        let q = chain();
        let order = atom_order(&q, &Cardinalities::none());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        let vo = variable_order(&q, &Cardinalities::none());
        assert_eq!(vo.arity(), q.variables().arity());
        assert!(q.variables().subset_of(&vo));
    }
}
