//! Worst-case-optimal multiway join state (generic leapfrog-style).
//!
//! The left-deep [`DeltaJoin`](crate::Dataflow::add_join) chain
//! materializes every binary intermediate, which on cyclic queries like the
//! triangle blows up to the size the AGM bound says a full join never needs
//! (Veldhuizen, *Incremental Maintenance for Leapfrog Triejoin*; Kara et
//! al., *Maintaining Triangle Queries under Updates*). This module
//! implements the attribute-at-a-time alternative: fix a global variable
//! order, then extend a partial binding one variable at a time by
//! *intersecting* the candidate values of every atom containing that
//! variable — iterate the smallest candidate set, hash-probe the rest. No
//! intermediate relation is ever materialized; only final join outputs are
//! emitted.
//!
//! # Index structure
//!
//! Each distinct dataflow input (≈ base relation) owns one [`Store`]: the
//! tuple→payload map plus a pool of [`PatternIndex`]es, the hash-trie
//! analogue of leapfrog's sorted tries. A pattern `(key_pos, val_pos)`
//! maps an assignment of the key columns to the set of values the `val`
//! column can take (with support counts, so deletions retract candidates).
//! Patterns are built lazily on first use and maintained incrementally
//! afterwards; because the pool lives on the *store*, atoms over the same
//! relation — the three occurrences of `E` in the self-join triangle —
//! share physical indexes instead of keeping three copies.
//!
//! # Delta maintenance
//!
//! For a consolidated batch with deltas `δ_i` on the inputs, the output
//! delta expands symmetrically (each occurrence's new value is `R_i ⊎ δ_i`):
//!
//! ```text
//! δQ = Σ_{∅ ≠ S ⊆ atoms-with-delta}  Π_{i∈S} δ_i · Π_{i∉S} R_i^old
//! ```
//!
//! Every term *seeds* the search from changed tuples: the first atom of `S`
//! iterates its (small) delta, binding all its variables at once, and the
//! remaining variables are solved by the intersection search — atoms in `S`
//! probe per-batch delta stores, the rest probe the old shared stores.
//! Old stores advance only after all terms, so the old/new discipline needs
//! no sequencing and self-joins need no per-occurrence state.

use crate::batch::DeltaBatch;
use crate::graph::DataflowStats;
use ivm_data::{FxHashMap, Relation, Schema, Sym, Tuple, Value};
use ivm_ring::Semiring;
use std::sync::{Arc, Mutex, MutexGuard};

/// Recover from a poisoned store lock: the store's invariants are
/// maintained tuple-at-a-time (no multi-step critical sections), so the
/// data is coherent even if a peer engine panicked mid-batch elsewhere.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A hash-trie level: for one access pattern `(key columns → value
/// column)`, the values reachable under each key assignment, with the
/// number of supporting tuples so cancellations retract candidates.
struct PatternIndex {
    key_pos: Box<[usize]>,
    val_pos: usize,
    map: FxHashMap<Tuple, FxHashMap<Value, u32>>,
}

impl PatternIndex {
    fn new(key_pos: Box<[usize]>, val_pos: usize) -> Self {
        PatternIndex {
            key_pos,
            val_pos,
            map: FxHashMap::default(),
        }
    }

    /// Record one present tuple.
    fn add(&mut self, t: &Tuple) {
        let key = t.project(&self.key_pos);
        *self
            .map
            .entry(key)
            .or_default()
            .entry(t.at(self.val_pos).clone())
            .or_insert(0) += 1;
    }

    /// Retract one no-longer-present tuple.
    fn remove(&mut self, t: &Tuple) {
        let key = t.project(&self.key_pos);
        let Some(vals) = self.map.get_mut(&key) else {
            return;
        };
        if let Some(c) = vals.get_mut(t.at(self.val_pos)) {
            *c -= 1;
            if *c == 0 {
                vals.remove(t.at(self.val_pos));
            }
        }
        if vals.is_empty() {
            self.map.remove(&key);
        }
    }

    /// The candidate values under `key`, if any.
    fn candidates(&self, key: &Tuple) -> Option<&FxHashMap<Value, u32>> {
        self.map.get(key)
    }
}

/// One input's shared state: payloads plus the lazily grown index pool.
struct Store<R> {
    tuples: FxHashMap<Tuple, R>,
    indexes: FxHashMap<(Box<[usize]>, usize), PatternIndex>,
}

impl<R: Semiring> Store<R> {
    fn new() -> Self {
        Store {
            tuples: FxHashMap::default(),
            indexes: FxHashMap::default(),
        }
    }

    /// Build a per-batch store over a consolidated delta relation.
    fn from_delta(delta: &Relation<R>) -> Self {
        let mut s = Store::new();
        for (t, r) in delta.iter() {
            s.tuples.insert(t.clone(), r.clone());
        }
        s
    }

    /// Apply one delta tuple, keeping every built index in sync with the
    /// present (non-zero payload) tuple set.
    fn apply(&mut self, t: &Tuple, delta: &R) {
        if delta.is_zero() {
            return;
        }
        match self.tuples.entry(t.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().add_assign(delta);
                if e.get().is_zero() {
                    e.remove();
                    for idx in self.indexes.values_mut() {
                        idx.remove(t);
                    }
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(delta.clone());
                for idx in self.indexes.values_mut() {
                    idx.add(t);
                }
            }
        }
    }

    /// Make sure the pattern `(key_pos → val_pos)` exists, building it from
    /// the current tuples on first request (O(|R|), amortized across the
    /// store's lifetime).
    fn ensure_index(&mut self, key_pos: &[usize], val_pos: usize) {
        let key = (Box::from(key_pos), val_pos);
        if self.indexes.contains_key(&key) {
            return;
        }
        let mut idx = PatternIndex::new(Box::from(key_pos), val_pos);
        for t in self.tuples.keys() {
            idx.add(t);
        }
        self.indexes.insert(key, idx);
    }

    /// The pattern index (must have been [`Self::ensure_index`]'d).
    fn index(&self, key_pos: &[usize], val_pos: usize) -> &PatternIndex {
        self.indexes
            .get(&(Box::from(key_pos), val_pos))
            .expect("pattern index must be ensured before the search")
    }
}

/// One atom occurrence: which input it reads and how its columns map onto
/// the global variable order.
struct AtomSpec {
    /// Index into the node's inputs (and the store pool).
    input: usize,
    /// For each atom column, the position of its variable in `var_order`.
    gpos: Vec<usize>,
}

/// A precomputed probe: one atom constraining the variable of a step.
struct Constraint {
    atom: usize,
    /// Atom-tuple positions of the atom's already-bound columns.
    key_pos: Box<[usize]>,
    /// Atom-tuple position of the step's variable.
    val_pos: usize,
    /// `var_order` positions aligned with `key_pos` (binding lookups).
    key_g: Box<[usize]>,
}

/// One variable of a seed plan's elimination order.
struct Step {
    /// Position of the variable in `var_order`.
    var_g: usize,
    /// Atoms containing the variable (each intersects the candidates).
    constraints: Vec<Constraint>,
    /// Atoms that become fully bound once this step's variable binds;
    /// their payload folds into the accumulator here.
    completed: Vec<usize>,
}

/// The search plan for delta terms seeded from one atom: bind the seed
/// atom's variables from a changed tuple, then eliminate the remaining
/// variables in global order.
struct SeedPlan {
    /// Atoms (≠ seed) whose variables are all covered by the seed's —
    /// presence-checked immediately after seeding.
    at_seed: Vec<usize>,
    steps: Vec<Step>,
}

/// A registry of multiway [`Store`]s shared *across* engines, keyed by
/// base relation. A serving layer maintaining many views over one ingest
/// stream hands the same hub to every member engine's builder: the first
/// engine to join a relation donates its store, later engines adopt it,
/// and the hub owner advances every shared store exactly once per batch
/// via [`StoreHub::advance_batch`].
///
/// # Coordinator-advance protocol
///
/// A store shared between engines must stay at the *pre-batch* state
/// until every member has run its inclusion–exclusion search for the
/// epoch — the `R_i^old` factors of the delta expansion. Member engines
/// therefore never advance shared slots inside
/// [`MultiwayState::apply`]; the coordinator calls
/// [`StoreHub::advance_batch`] once per epoch, after all members, with
/// the same consolidated batch it fed them. Owned (non-shared) slots
/// keep the original in-engine advance.
///
/// Adopting an existing store at build time is sound because a freshly
/// built engine's preprocessed store holds exactly the same tuples as
/// the hub store for that relation: both replay the same base state at
/// the same epoch. The swap is pure storage dedup, not a semantic
/// change.
pub struct StoreHub<R> {
    stores: Arc<Mutex<FxHashMap<Sym, SharedStore<R>>>>,
}

/// One store slot, aliasable across engines through a [`StoreHub`].
type SharedStore<R> = Arc<Mutex<Store<R>>>;

// Manual impls: `R` itself need not be Clone/Default for the hub handle
// to be cheap to copy around.
impl<R> Clone for StoreHub<R> {
    fn clone(&self) -> Self {
        StoreHub {
            stores: Arc::clone(&self.stores),
        }
    }
}

impl<R> Default for StoreHub<R> {
    fn default() -> Self {
        StoreHub {
            stores: Arc::new(Mutex::new(FxHashMap::default())),
        }
    }
}

impl<R: Semiring> StoreHub<R> {
    /// A fresh, empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Join the hub on `relation`, offering `own` as the donated store.
    /// Returns the store every member should use, plus `true` when an
    /// earlier member's store was adopted (a dedup hit: `own` is
    /// discarded, which is sound because its contents equal the adopted
    /// store's — see the type-level docs).
    fn join(&self, relation: Sym, own: SharedStore<R>) -> (SharedStore<R>, bool) {
        let mut map = relock(&self.stores);
        match map.entry(relation) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), true),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Arc::clone(&own));
                (own, false)
            }
        }
    }

    /// Advance every shared store by the epoch's consolidated batch.
    /// Call exactly once per epoch, after all member engines have
    /// processed the batch.
    pub fn advance_batch(&self, batch: &DeltaBatch<R>) {
        let map = relock(&self.stores);
        for (rel, store) in map.iter() {
            if let Some(delta) = batch.delta(*rel) {
                let mut s = relock(store);
                for (t, r) in delta.iter() {
                    s.apply(t, r);
                }
            }
        }
    }

    /// Relations currently shared through this hub.
    pub fn relations(&self) -> Vec<Sym> {
        relock(&self.stores).keys().copied().collect()
    }

    /// Total tuples resident across the hub's shared stores — each
    /// relation counted once no matter how many engines read it.
    pub fn stored_tuples(&self) -> usize {
        relock(&self.stores)
            .values()
            .map(|s| relock(s).tuples.len())
            .sum()
    }
}

/// State of one [`MultiwayJoin`](crate::Dataflow::add_multiway_join) node.
pub struct MultiwayState<R> {
    atoms: Vec<AtomSpec>,
    var_order: Schema,
    /// Per-input stores. Behind `Arc<Mutex<_>>` so a [`StoreHub`] can
    /// alias a slot across engines; a slot is uncontended (and the lock
    /// uncontested) unless it was [`Self::share_slot`]'d.
    stores: Vec<SharedStore<R>>,
    /// `shared[slot]` ⇒ the slot belongs to a hub and is advanced by the
    /// coordinator, not by [`Self::apply`].
    shared: Vec<bool>,
    plans: Vec<SeedPlan>,
}

impl<R: Semiring> MultiwayState<R> {
    /// Build the node state. `atoms` pairs each occurrence's input slot
    /// with its schema; `n_inputs` is the number of distinct inputs;
    /// `var_order` must cover every atom variable.
    pub(crate) fn new(atoms: &[(usize, Schema)], n_inputs: usize, var_order: Schema) -> Self {
        assert!(!atoms.is_empty(), "multiway join needs at least one atom");
        let specs: Vec<AtomSpec> = atoms
            .iter()
            .map(|(input, schema)| {
                assert!(*input < n_inputs, "atom input slot out of range");
                let gpos = schema
                    .vars()
                    .iter()
                    .map(|&v| {
                        var_order
                            .position(v)
                            .unwrap_or_else(|| panic!("atom variable {v} missing from var order"))
                    })
                    .collect();
                AtomSpec {
                    input: *input,
                    gpos,
                }
            })
            .collect();
        let plans = (0..specs.len())
            .map(|s| Self::build_plan(&specs, &var_order, s))
            .collect();
        MultiwayState {
            atoms: specs,
            var_order,
            stores: (0..n_inputs)
                .map(|_| Arc::new(Mutex::new(Store::new())))
                .collect(),
            shared: vec![false; n_inputs],
            plans,
        }
    }

    /// Swap input `slot`'s store for the hub's shared store of
    /// `relation` (donating ours if the hub has none yet), and mark the
    /// slot coordinator-advanced. Returns `true` on a dedup hit — an
    /// earlier engine's store was adopted.
    pub(crate) fn share_slot(&mut self, slot: usize, relation: Sym, hub: &StoreHub<R>) -> bool {
        let (store, existing) = hub.join(relation, Arc::clone(&self.stores[slot]));
        self.stores[slot] = store;
        self.shared[slot] = true;
        existing
    }

    fn build_plan(specs: &[AtomSpec], var_order: &Schema, seed: usize) -> SeedPlan {
        let n_g = var_order.arity();
        let mut bound = vec![false; n_g];
        for &g in &specs[seed].gpos {
            bound[g] = true;
        }
        let fully_bound = |spec: &AtomSpec, bound: &[bool]| spec.gpos.iter().all(|&g| bound[g]);
        let mut done: Vec<bool> = specs
            .iter()
            .enumerate()
            .map(|(j, spec)| j == seed || fully_bound(spec, &bound))
            .collect();
        let at_seed = (0..specs.len()).filter(|&j| j != seed && done[j]).collect();

        let mut steps = Vec::new();
        for g in 0..n_g {
            if bound[g] {
                continue;
            }
            let mut constraints = Vec::new();
            for (j, spec) in specs.iter().enumerate() {
                let Some(val_pos) = spec.gpos.iter().position(|&vg| vg == g) else {
                    continue;
                };
                let mut key_pos = Vec::new();
                let mut key_g = Vec::new();
                for (c, &cg) in spec.gpos.iter().enumerate() {
                    if bound[cg] {
                        key_pos.push(c);
                        key_g.push(cg);
                    }
                }
                constraints.push(Constraint {
                    atom: j,
                    key_pos: key_pos.into(),
                    val_pos,
                    key_g: key_g.into(),
                });
            }
            assert!(
                !constraints.is_empty(),
                "every variable occurs in some atom"
            );
            bound[g] = true;
            let mut completed = Vec::new();
            for (j, spec) in specs.iter().enumerate() {
                if !done[j] && fully_bound(spec, &bound) {
                    done[j] = true;
                    completed.push(j);
                }
            }
            steps.push(Step {
                var_g: g,
                constraints,
                completed,
            });
        }
        SeedPlan { at_seed, steps }
    }

    /// Number of atom occurrences this node joins.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of pattern indexes currently built on each input's store —
    /// exposed so tests can assert that self-join occurrences share
    /// indexes instead of duplicating them.
    pub fn index_counts(&self) -> Vec<usize> {
        self.stores
            .iter()
            .map(|s| relock(s).indexes.len())
            .collect()
    }

    /// Total tuples reachable across this node's stores, hub-shared slots
    /// included.
    pub fn stored_tuples(&self) -> usize {
        self.stores.iter().map(|s| relock(s).tuples.len()).sum()
    }

    /// Tuples in stores this node *owns* — hub-shared slots excluded, so
    /// a fleet-wide memory census never double-counts a shared store.
    pub fn owned_tuples(&self) -> usize {
        self.stores
            .iter()
            .zip(&self.shared)
            .filter(|(_, &sh)| !sh)
            .map(|(s, _)| relock(s).tuples.len())
            .sum()
    }

    /// Propagate one consolidated batch: run every inclusion–exclusion
    /// term seeded from the changed tuples, then advance the *owned*
    /// stores (hub-shared slots are advanced by the hub coordinator —
    /// see [`StoreHub`]). Returns the output delta over `var_order`.
    pub(crate) fn apply(
        &mut self,
        input_deltas: &[Option<&Relation<R>>],
        stats: &mut DataflowStats,
    ) -> Option<Relation<R>> {
        assert_eq!(input_deltas.len(), self.stores.len(), "one delta per input");
        if input_deltas.iter().all(|d| d.is_none()) {
            return None;
        }
        let delta_stores: Vec<Option<Store<R>>> = input_deltas
            .iter()
            .map(|d| d.map(Store::from_delta))
            .collect();
        // Atoms whose input changed this batch, in atom order. The term
        // enumeration below is a u64 subset mask (and exponential in this
        // count regardless), mirroring `Query::atoms_of`'s 64-atom cap.
        let d_atoms: Vec<usize> = (0..self.atoms.len())
            .filter(|&j| delta_stores[self.atoms[j].input].is_some())
            .collect();
        assert!(
            d_atoms.len() < 64,
            "more than 63 simultaneously updated atom occurrences unsupported"
        );

        // Lock every input slot once for the whole batch. With no hub
        // the locks are uncontended; with a hub this serializes member
        // engines per store, which the coordinator drives sequentially
        // anyway.
        let mut guards: Vec<MutexGuard<'_, Store<R>>> =
            self.stores.iter().map(|s| relock(s)).collect();

        // Ensure every pattern any term can probe, old and delta side,
        // before the search holds shared references into the stores.
        let mut delta_stores = delta_stores;
        for &seed in &d_atoms {
            for step in &self.plans[seed].steps {
                for c in &step.constraints {
                    let input = self.atoms[c.atom].input;
                    guards[input].ensure_index(&c.key_pos, c.val_pos);
                    if let Some(ds) = delta_stores[input].as_mut() {
                        ds.ensure_index(&c.key_pos, c.val_pos);
                    }
                }
            }
        }

        let mut out = Relation::new(self.var_order.clone());
        let mut binding: Vec<Option<Value>> = vec![None; self.var_order.arity()];
        {
            let old: Vec<&Store<R>> = guards.iter().map(|g| &**g).collect();
            for mask in 1u64..(1 << d_atoms.len()) {
                let in_s: Vec<usize> = (0..d_atoms.len())
                    .filter(|&k| mask & (1 << k) != 0)
                    .map(|k| d_atoms[k])
                    .collect();
                // Per-term store selection: S-atoms read the batch delta,
                // everyone else reads the old shared store.
                let sel: Vec<&Store<R>> = self
                    .atoms
                    .iter()
                    .enumerate()
                    .map(|(j, spec)| {
                        if in_s.contains(&j) {
                            delta_stores[spec.input]
                                .as_ref()
                                .expect("S-atoms have a delta")
                        } else {
                            old[spec.input]
                        }
                    })
                    .collect();
                run_term(
                    &self.atoms,
                    &self.plans,
                    &in_s,
                    &sel,
                    &mut binding,
                    &mut out,
                    stats,
                );
            }
        }

        for (slot, d) in input_deltas.iter().enumerate() {
            if self.shared[slot] {
                continue; // the hub coordinator advances this store
            }
            if let Some(d) = d {
                for (t, r) in d.iter() {
                    guards[slot].apply(t, r);
                }
            }
        }
        Some(out)
    }
}

/// Assemble an atom's full tuple from the (fully covering) binding.
fn atom_tuple(spec: &AtomSpec, binding: &[Option<Value>]) -> Tuple {
    spec.gpos
        .iter()
        .map(|&g| binding[g].clone().expect("atom variable bound"))
        .collect()
}

/// One inclusion–exclusion term: seed from the first S-atom's delta
/// tuples, then run the intersection search over the remaining variables.
fn run_term<R: Semiring>(
    atoms: &[AtomSpec],
    plans: &[SeedPlan],
    in_s: &[usize],
    sel: &[&Store<R>],
    binding: &mut [Option<Value>],
    out: &mut Relation<R>,
    stats: &mut DataflowStats,
) {
    let seed = in_s[0];
    let plan = &plans[seed];
    // Resolve every step's pattern indexes once per term — the stores are
    // immutable for the whole search, so the inner loops skip the pool
    // lookup (and its boxed-key allocation) entirely.
    let step_indexes: Vec<Vec<&PatternIndex>> = plan
        .steps
        .iter()
        .map(|step| {
            step.constraints
                .iter()
                .map(|c| sel[c.atom].index(&c.key_pos, c.val_pos))
                .collect()
        })
        .collect();
    for (t, r) in sel[seed].tuples.iter() {
        stats.multiway_seeds += 1;
        for (c, &g) in atoms[seed].gpos.iter().enumerate() {
            binding[g] = Some(t.at(c).clone());
        }
        let mut acc = r.clone();
        let mut alive = true;
        for &j in &plan.at_seed {
            stats.multiway_probes += 1;
            match sel[j].tuples.get(&atom_tuple(&atoms[j], binding)) {
                Some(p) => acc = acc.times(p),
                None => {
                    alive = false;
                    break;
                }
            }
        }
        if alive && !acc.is_zero() {
            search(atoms, plan, &step_indexes, 0, sel, binding, acc, out, stats);
        }
    }
}

/// Extend the binding by the variable of step `step_i`: intersect the
/// candidate sets of every constraining atom (iterate the smallest, probe
/// the rest), fold completed atoms' payloads, recurse.
#[allow(clippy::too_many_arguments)]
fn search<R: Semiring>(
    atoms: &[AtomSpec],
    plan: &SeedPlan,
    step_indexes: &[Vec<&PatternIndex>],
    step_i: usize,
    sel: &[&Store<R>],
    binding: &mut [Option<Value>],
    acc: R,
    out: &mut Relation<R>,
    stats: &mut DataflowStats,
) {
    let Some(step) = plan.steps.get(step_i) else {
        let tuple: Tuple = binding
            .iter()
            .map(|v| v.clone().expect("all variables bound at a leaf"))
            .collect();
        out.apply(tuple, &acc);
        return;
    };
    let mut maps: Vec<&FxHashMap<Value, u32>> = Vec::with_capacity(step.constraints.len());
    for (c, idx) in step.constraints.iter().zip(&step_indexes[step_i]) {
        stats.multiway_probes += 1;
        let key: Tuple = c
            .key_g
            .iter()
            .map(|&g| binding[g].clone().expect("key variable bound"))
            .collect();
        match idx.candidates(&key) {
            Some(m) => maps.push(m),
            None => return,
        }
    }
    let smallest = maps
        .iter()
        .enumerate()
        .min_by_key(|(_, m)| m.len())
        .map(|(i, _)| i)
        .expect("at least one constraint per step");
    'vals: for val in maps[smallest].keys() {
        stats.multiway_intersections += 1;
        for (i, m) in maps.iter().enumerate() {
            if i == smallest {
                continue;
            }
            stats.multiway_probes += 1;
            if !m.contains_key(val) {
                continue 'vals;
            }
        }
        binding[step.var_g] = Some(val.clone());
        let mut acc2 = acc.clone();
        let mut alive = true;
        for &j in &step.completed {
            stats.multiway_probes += 1;
            match sel[j].tuples.get(&atom_tuple(&atoms[j], binding)) {
                Some(p) => acc2 = acc2.times(p),
                None => {
                    alive = false;
                    break;
                }
            }
        }
        if alive && !acc2.is_zero() {
            search(
                atoms,
                plan,
                step_indexes,
                step_i + 1,
                sel,
                binding,
                acc2,
                out,
                stats,
            );
        }
    }
    binding[step.var_g] = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::{eval_join_aggregate, lift_one};
    use ivm_data::{sym, tup, vars};

    /// Triangle over one shared input: E(a,b), E(b,c), E(c,a).
    fn triangle_state() -> (MultiwayState<i64>, Schema) {
        let [a, b, c] = vars(["mw_A", "mw_B", "mw_C"]);
        let vo = Schema::from([a, b, c]);
        let atoms = vec![
            (0usize, Schema::from([a, b])),
            (0, Schema::from([b, c])),
            (0, Schema::from([c, a])),
        ];
        (MultiwayState::new(&atoms, 1, vo.clone()), vo)
    }

    fn edge_delta(edges: &[(i64, i64, i64)]) -> Relation<i64> {
        let [x, y] = vars(["mw_ex", "mw_ey"]);
        Relation::from_rows(
            Schema::from([x, y]),
            edges.iter().map(|&(a, b, m)| (tup![a, b], m)),
        )
    }

    #[test]
    fn triangle_insert_then_delete() {
        let (mut st, _) = triangle_state();
        let mut stats = DataflowStats::default();
        let d = edge_delta(&[(1, 2, 1), (2, 3, 1), (3, 1, 1), (1, 9, 1)]);
        let out = st.apply(&[Some(&d)], &mut stats).unwrap();
        // One directed triangle, counted once per rotation of (a,b,c).
        assert_eq!(out.total(), 3);
        // Deleting a non-triangle edge changes nothing.
        let d = edge_delta(&[(1, 9, -1)]);
        let out = st.apply(&[Some(&d)], &mut stats).unwrap();
        assert_eq!(out.total(), 0);
        // Deleting a triangle edge retracts all three rotations.
        let d = edge_delta(&[(2, 3, -1)]);
        let out = st.apply(&[Some(&d)], &mut stats).unwrap();
        assert_eq!(out.total(), -3);
        assert_eq!(st.stored_tuples(), 2);
    }

    #[test]
    fn self_join_occurrences_share_indexes() {
        let (mut st, _) = triangle_state();
        let mut stats = DataflowStats::default();
        let d = edge_delta(&[(1, 2, 1), (2, 3, 1), (3, 1, 1)]);
        st.apply(&[Some(&d)], &mut stats).unwrap();
        // Three occurrences, but the seed plans only ever probe E keyed by
        // its first or its second column — two shared patterns, one store.
        assert_eq!(st.index_counts(), vec![2]);
    }

    #[test]
    fn matches_oracle_on_distinct_relations() {
        // Cyclic listing R(a,b)·S(b,c)·T(c,a) with free a,b,c.
        let [a, b, c] = vars(["mw_LA", "mw_LB", "mw_LC"]);
        let vo = Schema::from([a, b, c]);
        let atoms = vec![
            (0usize, Schema::from([a, b])),
            (1, Schema::from([b, c])),
            (2, Schema::from([c, a])),
        ];
        let mut st: MultiwayState<i64> = MultiwayState::new(&atoms, 3, vo.clone());
        let mut stats = DataflowStats::default();

        let mut rels: Vec<Relation<i64>> = vec![
            Relation::new(Schema::from([a, b])),
            Relation::new(Schema::from([b, c])),
            Relation::new(Schema::from([c, a])),
        ];
        let mut maintained = Relation::new(vo.clone());
        // Mixed batches, payload 2 on one edge, overlapping deltas.
        let batches: Vec<Vec<(usize, i64, i64, i64)>> = vec![
            vec![(0, 1, 2, 1), (1, 2, 3, 2), (2, 3, 1, 1)],
            vec![(0, 2, 2, 1), (1, 2, 2, 1), (2, 2, 2, 1), (0, 1, 2, 1)],
            vec![(1, 2, 3, -2), (2, 2, 2, -1)],
        ];
        for batch in batches {
            let mut deltas: Vec<Relation<i64>> = rels
                .iter()
                .map(|r| Relation::new(r.schema().clone()))
                .collect();
            for &(i, x, y, m) in &batch {
                deltas[i].apply(tup![x, y], &m);
                rels[i].apply(tup![x, y], &m);
            }
            let ds: Vec<Option<&Relation<i64>>> = deltas
                .iter()
                .map(|d| if d.is_empty() { None } else { Some(d) })
                .collect();
            if let Some(out) = st.apply(&ds, &mut stats) {
                for (t, r) in out.iter() {
                    maintained.apply(t.clone(), r);
                }
            }
            let expect = eval_join_aggregate(&[&rels[0], &rels[1], &rels[2]], &vo, lift_one);
            assert_eq!(maintained.len(), expect.len());
            for (t, p) in expect.iter() {
                assert_eq!(&maintained.get(t), p, "at {t:?}");
            }
        }
        assert!(stats.multiway_seeds > 0);
    }

    #[test]
    fn hub_shared_store_stays_oracle_correct() {
        // Two independent triangle states over the same edge relation,
        // joined through one hub: both must see identical deltas on every
        // batch, the hub must hold the relation's tuples exactly once,
        // and the second join must report a dedup hit.
        let e_sym = sym("mw_hubE");
        let (mut st1, _) = triangle_state();
        let (mut st2, _) = triangle_state();
        let hub: StoreHub<i64> = StoreHub::new();
        assert!(!st1.share_slot(0, e_sym, &hub), "first join donates");
        assert!(st2.share_slot(0, e_sym, &hub), "second join adopts");
        assert_eq!(hub.relations(), vec![e_sym]);

        let mut stats = DataflowStats::default();
        let batches: Vec<Vec<(i64, i64, i64)>> = vec![
            vec![(1, 2, 1), (2, 3, 1), (3, 1, 1), (1, 9, 1)],
            vec![(4, 5, 1), (5, 4, 1), (4, 4, 1)],
            vec![(2, 3, -1), (1, 9, -1)],
        ];
        for edges in batches {
            let d = edge_delta(&edges);
            let o1 = st1.apply(&[Some(&d)], &mut stats).unwrap();
            let o2 = st2.apply(&[Some(&d)], &mut stats).unwrap();
            assert_eq!(o1.len(), o2.len());
            for (t, r) in o1.iter() {
                assert_eq!(&o2.get(t), r, "members disagree at {t:?}");
            }
            // Neither member advanced the shared slot in-engine...
            assert_eq!(st1.stored_tuples(), st2.stored_tuples());
            assert_eq!(st1.owned_tuples(), 0, "shared slot is not owned");
            // ...the coordinator advances it once per epoch.
            let mut batch = DeltaBatch::new();
            for (t, r) in d.iter() {
                batch.push(&ivm_data::Update::with_payload(e_sym, t.clone(), *r));
            }
            hub.advance_batch(&batch);
        }
        // Post-stream: edges {12,23,31,19,45,54,44} minus {23,19} = 5
        // tuples, resident once in the hub, visible from both members.
        assert_eq!(hub.stored_tuples(), 5);
        assert_eq!(st1.stored_tuples(), 5);
        assert_eq!(st2.stored_tuples(), 5);
    }

    #[test]
    fn empty_batch_is_noop() {
        let (mut st, _) = triangle_state();
        let mut stats = DataflowStats::default();
        assert!(st.apply(&[None], &mut stats).is_none());
        assert_eq!(stats.multiway_seeds, 0);
    }

    #[test]
    fn seed_covering_all_variables_short_circuits() {
        // Q(a,b) = R(a,b)·R(a,b): the second occurrence is fully bound by
        // the seed, exercising the at_seed presence probe.
        let [a, b] = vars(["mw_DA", "mw_DB"]);
        let vo = Schema::from([a, b]);
        let atoms = vec![(0usize, vo.clone()), (0, vo.clone())];
        let mut st: MultiwayState<i64> = MultiwayState::new(&atoms, 1, vo);
        let mut stats = DataflowStats::default();
        let d = edge_delta(&[(1, 2, 3)]);
        let out = st.apply(&[Some(&d)], &mut stats).unwrap();
        // (R+δ)² − R² with R = 0: payload 9.
        assert_eq!(out.get(&tup![1i64, 2i64]), 9);
        let _ = sym("mw_unused");
    }
}
