//! Consolidated update batches.
//!
//! Ring payloads make a batch's cumulative effect independent of execution
//! order (Sec. 2 of the paper), so before propagation we *consolidate*:
//! all updates to the same `(relation, tuple)` pair collapse into one entry
//! with the summed payload, and entries that cancel to zero disappear. A
//! batch of 32k single-tuple updates touching 1k distinct tuples then costs
//! one propagation of 1k deltas instead of 32k propagations of one.

use ivm_data::{Batch, FxHashMap, Sym, Tuple, Update};
use ivm_ring::Semiring;

/// A batch of updates, consolidated per relation and per tuple.
#[derive(Clone, Debug)]
pub struct DeltaBatch<R> {
    deltas: FxHashMap<Sym, FxHashMap<Tuple, R>>,
}

impl<R: Semiring> Default for DeltaBatch<R> {
    fn default() -> Self {
        DeltaBatch::new()
    }
}

impl<R: Semiring> DeltaBatch<R> {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch {
            deltas: FxHashMap::default(),
        }
    }

    /// Consolidate a sequence of single-tuple updates.
    pub fn from_updates<'a>(updates: impl IntoIterator<Item = &'a Update<R>>) -> Self
    where
        R: 'a,
    {
        let mut batch = DeltaBatch::new();
        for u in updates {
            batch.push(u);
        }
        batch
    }

    /// Merge one update in, cancelling to zero where possible.
    pub fn push(&mut self, upd: &Update<R>) {
        if upd.payload.is_zero() {
            return;
        }
        let rel = self.deltas.entry(upd.relation).or_default();
        match rel.entry(upd.tuple.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().add_assign(&upd.payload);
                if e.get().is_zero() {
                    e.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(upd.payload.clone());
            }
        }
        if self.deltas[&upd.relation].is_empty() {
            self.deltas.remove(&upd.relation);
        }
    }

    /// The consolidated delta for one relation, if non-empty.
    pub fn delta(&self, relation: Sym) -> Option<&FxHashMap<Tuple, R>> {
        self.deltas.get(&relation)
    }

    /// Relations with a non-empty delta.
    pub fn relations(&self) -> impl Iterator<Item = Sym> + '_ {
        self.deltas.keys().copied()
    }

    /// Total number of distinct `(relation, tuple)` entries.
    pub fn len(&self) -> usize {
        self.deltas.values().map(|m| m.len()).sum()
    }

    /// Whether every update cancelled out.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Flatten back into single-tuple updates (order unspecified).
    pub fn to_updates(&self) -> Batch<R> {
        let mut out = Vec::with_capacity(self.len());
        for (&rel, m) in &self.deltas {
            for (t, r) in m {
                out.push(Update::with_payload(rel, t.clone(), r.clone()));
            }
        }
        out
    }

    /// Hash-partition the consolidated batch into `parts` sub-batches.
    ///
    /// `route` maps each `(relation, tuple)` entry to `Some(p)` (the entry
    /// goes to sub-batch `p mod parts` alone) or `None` (*broadcast*: a
    /// copy goes to every sub-batch). Sound because delta propagation is
    /// ring-linear: the sub-batches' output deltas ⊎-merge back to the
    /// whole batch's output delta, whatever the partition.
    ///
    /// Partitioning *after* consolidation is deliberate — cancelled work
    /// disappears before anything is cloned for routing, so a sharded
    /// engine never ships updates whose net effect is zero.
    pub fn partition_by(
        &self,
        parts: usize,
        mut route: impl FnMut(Sym, &Tuple) -> Option<usize>,
    ) -> Vec<DeltaBatch<R>> {
        assert!(parts > 0, "cannot partition into zero parts");
        let mut out: Vec<DeltaBatch<R>> = (0..parts).map(|_| DeltaBatch::new()).collect();
        for (&rel, m) in &self.deltas {
            for (t, r) in m {
                match route(rel, t) {
                    Some(p) => {
                        out[p % parts].insert_consolidated(rel, t.clone(), r.clone());
                    }
                    None => {
                        for part in &mut out {
                            part.insert_consolidated(rel, t.clone(), r.clone());
                        }
                    }
                }
            }
        }
        out
    }

    /// Insert an already-consolidated non-zero entry (keys coming from an
    /// existing batch are distinct, so no re-summing is needed).
    fn insert_consolidated(&mut self, rel: Sym, t: Tuple, r: R) {
        debug_assert!(!r.is_zero(), "consolidated entries are non-zero");
        self.deltas.entry(rel).or_default().insert(t, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::{sym, tup};

    #[test]
    fn consolidates_same_tuple() {
        let r = sym("dbat_R");
        let ups: Vec<Update<i64>> = vec![
            Update::with_payload(r, tup![1i64], 2),
            Update::with_payload(r, tup![1i64], 3),
            Update::with_payload(r, tup![2i64], 1),
        ];
        let b = DeltaBatch::from_updates(&ups);
        assert_eq!(b.len(), 2);
        assert_eq!(b.delta(r).unwrap()[&tup![1i64]], 5);
    }

    #[test]
    fn cancelling_updates_vanish() {
        let r = sym("dbat_R2");
        let ups: Vec<Update<i64>> = vec![
            Update::with_payload(r, tup![1i64], 2),
            Update::with_payload(r, tup![1i64], -2),
        ];
        let b = DeltaBatch::from_updates(&ups);
        assert!(b.is_empty());
        assert!(b.delta(r).is_none());
    }

    #[test]
    fn zero_payload_updates_ignored() {
        let r = sym("dbat_R3");
        let mut b: DeltaBatch<i64> = DeltaBatch::new();
        b.push(&Update::with_payload(r, tup![1i64], 0));
        assert!(b.is_empty());
    }

    #[test]
    fn empty_batch_is_empty_everywhere() {
        let none: [Update<i64>; 0] = [];
        let b = DeltaBatch::from_updates(&none);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.relations().count(), 0);
        assert!(b.to_updates().is_empty());
    }

    #[test]
    fn reinsert_after_delete_survives() {
        // +1, −1, +1 on one tuple: the middle pair annihilates but the
        // final insert must come through with multiplicity exactly 1.
        let r = sym("dbat_R5");
        let ups: Vec<Update<i64>> = vec![
            Update::insert(r, tup![7i64]),
            Update::delete(r, tup![7i64]),
            Update::insert(r, tup![7i64]),
        ];
        let b = DeltaBatch::from_updates(&ups);
        assert_eq!(b.len(), 1);
        assert_eq!(b.delta(r).unwrap()[&tup![7i64]], 1);
    }

    #[test]
    fn zero_annihilation_is_per_tuple_not_per_relation() {
        // One tuple cancels, its sibling in the same relation must not.
        let r = sym("dbat_R6");
        let ups: Vec<Update<i64>> = vec![
            Update::with_payload(r, tup![1i64], 2),
            Update::with_payload(r, tup![2i64], 5),
            Update::with_payload(r, tup![1i64], -2),
        ];
        let b = DeltaBatch::from_updates(&ups);
        assert_eq!(b.len(), 1);
        assert!(!b.delta(r).unwrap().contains_key(&tup![1i64]));
        assert_eq!(b.delta(r).unwrap()[&tup![2i64]], 5);
    }

    #[test]
    fn relation_entry_vanishes_when_all_tuples_cancel() {
        // A relation whose every delta annihilates must not linger as an
        // empty map — `relations()` drives source propagation.
        let (r, s) = (sym("dbat_R7"), sym("dbat_S7"));
        let ups: Vec<Update<i64>> = vec![
            Update::insert(r, tup![1i64]),
            Update::insert(s, tup![9i64]),
            Update::delete(r, tup![1i64]),
        ];
        let b = DeltaBatch::from_updates(&ups);
        let rels: Vec<_> = b.relations().collect();
        assert_eq!(rels, vec![s]);
        // Pushing the cancelling pair again onto the live batch keeps s.
        let mut b = b;
        b.push(&Update::insert(r, tup![1i64]));
        b.push(&Update::delete(r, tup![1i64]));
        assert_eq!(b.len(), 1);
        assert!(b.delta(r).is_none());
    }

    #[test]
    fn delete_of_absent_tuple_carries_negative_multiplicity() {
        // Deletes need no prior insert: the batch faithfully records the
        // negative delta and downstream relations go negative (Sec. 2).
        let r = sym("dbat_R8");
        let ups: Vec<Update<i64>> = vec![Update::delete(r, tup![3i64])];
        let b = DeltaBatch::from_updates(&ups);
        assert_eq!(b.delta(r).unwrap()[&tup![3i64]], -1);
    }

    #[test]
    fn partition_by_splits_and_broadcasts() {
        let (r, s) = (sym("dbat_P1"), sym("dbat_P2"));
        let ups: Vec<Update<i64>> = vec![
            Update::with_payload(r, tup![0i64], 1),
            Update::with_payload(r, tup![1i64], 2),
            Update::with_payload(r, tup![2i64], 3),
            Update::with_payload(s, tup![7i64], 4),
        ];
        let b = DeltaBatch::from_updates(&ups);
        let parts = b.partition_by(2, |rel, t| {
            if rel == r {
                Some(t.at(0).as_int().unwrap() as usize % 2)
            } else {
                None // broadcast s
            }
        });
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].delta(r).unwrap().len(), 2); // tuples 0, 2
        assert_eq!(parts[1].delta(r).unwrap().len(), 1); // tuple 1
        for p in &parts {
            assert_eq!(p.delta(s).unwrap()[&tup![7i64]], 4);
        }
        // ⊎ of the parts re-consolidates to the original batch (the
        // broadcast relation appears once per part; summing is the merge
        // semantics a sharded *output* merge relies on, so here we only
        // check the partitioned relation round-trips exactly).
        let mut merged: DeltaBatch<i64> = DeltaBatch::new();
        for p in &parts {
            for u in p.to_updates() {
                if u.relation == r {
                    merged.push(&u);
                }
            }
        }
        assert_eq!(merged.delta(r).unwrap(), b.delta(r).unwrap());
    }

    #[test]
    fn partition_by_drops_cancelled_entries_before_routing() {
        let r = sym("dbat_P3");
        let ups: Vec<Update<i64>> = vec![
            Update::insert(r, tup![1i64]),
            Update::delete(r, tup![1i64]),
            Update::insert(r, tup![2i64]),
        ];
        let b = DeltaBatch::from_updates(&ups);
        let parts = b.partition_by(4, |_, _| None);
        for p in &parts {
            assert_eq!(p.len(), 1, "only the surviving entry is broadcast");
        }
    }

    #[test]
    fn roundtrip_to_updates() {
        let (r, s) = (sym("dbat_R4"), sym("dbat_S4"));
        let ups: Vec<Update<i64>> = vec![
            Update::with_payload(r, tup![1i64], 1),
            Update::with_payload(s, tup![2i64], -1),
        ];
        let b = DeltaBatch::from_updates(&ups);
        let back = b.to_updates();
        assert_eq!(back.len(), 2);
        let again = DeltaBatch::from_updates(&back);
        assert_eq!(again.len(), b.len());
    }
}
