//! The generic heavy-light engine: IVMε (Sec. 3.3) over `ivm_data`
//! tuples and semiring payloads, behind the common [`Maintainer`] trait.

use crate::adjacency::Adj;
use ivm_core::{EngineError, Maintainer};
use ivm_data::ops::Lift;
use ivm_data::{consolidate, Database, FxHashMap, FxHashSet, Relation, Sym, Tuple, Update, Value};
use ivm_obs::{Counter, Gauge, MetricsRegistry};
use ivm_query::Query;
use ivm_ring::Semiring;
use std::collections::hash_map::Entry;

/// The rotation a triangle-class query must exhibit: three distinct
/// binary dynamic relations forming one oriented cycle
/// `R(a,b)·S(b,c)·T(c,a)` with no free and no input variables. Returns
/// the relation names and variables in rotation order (`vars[i]` is the
/// first column of `rels[i]`).
pub(crate) fn rotation(q: &Query) -> Option<([Sym; 3], [Sym; 3])> {
    if q.atoms.len() != 3 || q.free.arity() != 0 || q.input.arity() != 0 {
        return None;
    }
    if q.atoms.iter().any(|a| !a.dynamic) {
        return None;
    }
    let names: Vec<Sym> = q.atoms.iter().map(|a| a.name).collect();
    if names[0] == names[1] || names[0] == names[2] || names[1] == names[2] {
        return None;
    }
    let pair = |idx: usize| -> Option<(Sym, Sym)> {
        let v = q.atoms[idx].schema.vars();
        (v.len() == 2).then(|| (v[0], v[1]))
    };
    let (a, b) = pair(0)?;
    for (i, j) in [(1usize, 2usize), (2, 1)] {
        let (b2, c) = pair(i)?;
        let (c2, a2) = pair(j)?;
        if b2 == b && c2 == c && a2 == a && a != b && b != c && a != c {
            return Some(([names[0], names[i], names[j]], [a, b, c]));
        }
    }
    None
}

/// Whether `q` is a query the heavy-light engine maintains (see
/// [`rotation`]). The session layer consults this during classification
/// so auto-selection only routes eligible cyclic queries here.
pub fn admits(q: &Query) -> bool {
    rotation(q).is_some()
}

/// Cumulative engine counters, exposed for benches and `explain()`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HlStats {
    /// Single-tuple updates ingested (batch paths count their items).
    pub updates: u64,
    /// Inner-loop operations — the machine-independent cost measure the
    /// scaling experiments plot (same convention as `ivm_ivme`).
    pub work: u64,
    /// Per-key partition migrations performed.
    pub migrations: u64,
    /// Global θ-recomputing rebalances performed.
    pub rebalances: u64,
    /// Count deltas answered through the heavy path (HH loop + HL view
    /// lookup) — updates that would have paid O(deg) without the split.
    pub heavy_hits: u64,
    /// Count deltas answered by scanning a light (< 2θ) row.
    pub light_scans: u64,
}

/// Metric handles behind [`HeavyLightEngine::observe`]; counters publish
/// increments of [`HlStats`], gauges the live partition shape.
struct HlObs {
    updates: Counter,
    work: Counter,
    migrations: Counter,
    rebalances: Counter,
    heavy_hits: Counter,
    light_scans: Counter,
    threshold: Gauge,
    heavy_keys: Gauge,
    view_entries: Gauge,
    base_pairs: Gauge,
    /// Counters are cumulative; this remembers what was already published
    /// so re-entrant publishes add exactly the increment.
    published: HlStats,
}

fn bump<R: Semiring>(map: &mut FxHashMap<(Value, Value), R>, key: (Value, Value), d: R) {
    if d.is_zero() {
        return;
    }
    match map.entry(key) {
        Entry::Occupied(mut o) => {
            o.get_mut().add_assign(&d);
            if o.get().is_zero() {
                o.remove();
            }
        }
        Entry::Vacant(v) => {
            v.insert(d);
        }
    }
}

/// IVMε over generic tuples (Sec. 3.3): heavy-light partitioned triangle
/// maintenance with amortized O(N^max(ε,1−ε)) single-tuple updates —
/// O(√N) at the optimal ε = ½ — generalizing the raw-`u64`
/// `ivm_ivme::TriangleIvmEps` kernel to `Value` keys and any *ring*
/// payload behind the [`Maintainer`] trait.
///
/// Each relation is partitioned on its first column: a key is *heavy*
/// when its degree (distinct present partners) reaches 2θ and *light*
/// again below θ — the hysteresis band amortizes partition migrations —
/// with θ = ⌈N^ε⌉ recomputed, and the auxiliary views rebuilt, whenever
/// the database size drifts by 2× (lazy global rebalancing). The heavy
/// side is maintained through materialized views
/// `view[i][(u,w)] = Σ_v rel[i+1]_H(u,v)·rel[i+2]_L(v,w)`; the light
/// side answers deltas by enumerating its ≤ 2θ partners directly.
///
/// Payloads must form a ring in practice: migrating a key across the
/// partition boundary transfers its view contributions *with sign*, so
/// construction refuses payload types whose [`Semiring::try_neg`] is
/// `None`. Deletions arrive the usual way, as additive-inverse payloads.
pub struct HeavyLightEngine<R: Semiring> {
    query: Query,
    eps: f64,
    /// Relation names in rotation order (`rels[i]` maps var i → var i+1).
    rels: [Sym; 3],
    /// Rotation variables; `vars[i]` is the first column of `rels[i]`,
    /// and the column whose lifting is folded into `rels[i]`'s payloads.
    vars: [Sym; 3],
    lift: Lift<R>,
    rel: [Adj<R>; 3],
    /// Heavy first-column keys per relation.
    heavy: [FxHashSet<Value>; 3],
    /// `view[i][(u, w)] = Σ_v rel[i+1]_H(u,v) · rel[i+2]_L(v,w)`.
    view: [FxHashMap<(Value, Value), R>; 3],
    count: R,
    threshold: usize,
    /// Total size at the last rebalance — the 2× drift reference.
    base_n: usize,
    stats: HlStats,
    obs: Option<HlObs>,
}

impl<R: Semiring> std::fmt::Debug for HeavyLightEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeavyLightEngine")
            .field("eps", &self.eps)
            .field("threshold", &self.threshold)
            .field("base_n", &self.base_n)
            .field("heavy", &self.heavy_counts())
            .field("view_entries", &self.view_entries())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<R: Semiring> HeavyLightEngine<R> {
    /// Build over `db` at the optimal ε = ½.
    pub fn new(query: Query, db: &Database<R>, lift: Lift<R>) -> Result<Self, EngineError> {
        Self::new_with_eps(query, db, lift, 0.5)
    }

    /// Build over `db` with an explicit ε ∈ [0, 1]: update time is
    /// O(N^max(ε,1−ε)) amortized against O(N^{1+min(ε,1−ε)}) view space.
    pub fn new_with_eps(
        query: Query,
        db: &Database<R>,
        lift: Lift<R>,
        eps: f64,
    ) -> Result<Self, EngineError> {
        if !(0.0..=1.0).contains(&eps) {
            return Err(EngineError::NotSupported(format!(
                "heavy-light ε must be in [0, 1], got {eps}"
            )));
        }
        let Some((rels, vars)) = rotation(&query) else {
            return Err(EngineError::NotSupported(
                "heavy-light maintenance needs a triangle-class query: \
                 three distinct binary dynamic relations forming one \
                 oriented cycle R(a,b)·S(b,c)·T(c,a) with no free \
                 variables"
                    .into(),
            ));
        };
        if R::one().try_neg().is_none() {
            return Err(EngineError::NotSupported(
                "heavy-light maintenance transfers view contributions \
                 with sign when a key migrates across the partition \
                 boundary, so the payload type must have additive \
                 inverses (a ring; see Semiring::try_neg)"
                    .into(),
            ));
        }
        let mut eng = HeavyLightEngine {
            query,
            eps,
            rels,
            vars,
            lift,
            rel: Default::default(),
            heavy: Default::default(),
            view: Default::default(),
            count: R::zero(),
            threshold: 1,
            base_n: 4,
            stats: HlStats::default(),
            obs: None,
        };
        // Preprocess by replaying the initial contents through the
        // ordinary update path: O(|D|·θ) worst case, and the size-drift
        // trigger keeps θ tracking the growing base as it loads.
        for i in 0..3 {
            if let Some(relation) = db.get(rels[i]) {
                for (t, r) in relation.iter() {
                    let m = r.times(&(eng.lift)(vars[i], t.at(0)));
                    if !m.is_zero() {
                        let (x, y) = (t.at(0).clone(), t.at(1).clone());
                        eng.apply_update(i, &x, &y, &m);
                    }
                }
            }
        }
        Ok(eng)
    }

    /// The ε this engine was built with.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The current heavy/light threshold θ = ⌈N^ε⌉ (as of the last
    /// rebalance).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Cumulative engine counters.
    pub fn stats(&self) -> HlStats {
        self.stats
    }

    /// The maintained aggregate, without going through the
    /// `for_each_output` enumeration (which needs `&mut self`).
    pub fn count(&self) -> &R {
        &self.count
    }

    /// Heavy-key counts per relation, in rotation order.
    pub fn heavy_counts(&self) -> [usize; 3] {
        [0, 1, 2].map(|i| self.heavy[i].len())
    }

    /// Per-relation partition shape: `(relation, heavy keys, light keys)`
    /// over distinct first-column keys, in rotation order.
    pub fn part_sizes(&self) -> [(Sym, usize, usize); 3] {
        [0, 1, 2].map(|i| {
            let heavy = self.heavy[i].len();
            let keys = self.rel[i].keys_fwd().count();
            (self.rels[i], heavy, keys.saturating_sub(heavy))
        })
    }

    /// Total auxiliary-view entries (the O(N^{1+min(ε,1−ε)}) space term).
    pub fn view_entries(&self) -> usize {
        self.view.iter().map(|v| v.len()).sum()
    }

    /// Present pairs across the three base relations.
    pub fn base_pairs(&self) -> usize {
        self.rel.iter().map(|r| r.len()).sum()
    }

    /// Tuples resident in engine-owned state: base indexes (counted once
    /// per direction) plus auxiliary views.
    pub fn resident_tuples(&self) -> usize {
        2 * self.base_pairs() + self.view_entries()
    }

    /// One line describing the live plan, for `Session::describe`.
    pub fn plan(&self) -> String {
        let parts = self.part_sizes();
        format!(
            "HeavyLight(ε={}, θ={}, heavy/light keys {})",
            self.eps,
            self.threshold,
            parts
                .iter()
                .map(|(r, h, l)| format!("{r}:{h}/{l}"))
                .collect::<Vec<_>>()
                .join(" "),
        )
    }

    /// Publish `ivm.hl.*`-style series under `prefix`: counters for
    /// updates/work/migrations/rebalances/heavy-vs-light path hits,
    /// gauges for θ and the live partition/view sizes. Attaching twice
    /// (e.g. after a family replan rebuilt the engine) stays cumulative.
    pub fn observe(&mut self, registry: &MetricsRegistry, prefix: &str) {
        let mut obs = HlObs {
            updates: registry.counter(&format!("{prefix}.updates")),
            work: registry.counter(&format!("{prefix}.work")),
            migrations: registry.counter(&format!("{prefix}.migrations")),
            rebalances: registry.counter(&format!("{prefix}.rebalances")),
            heavy_hits: registry.counter(&format!("{prefix}.heavy_hits")),
            light_scans: registry.counter(&format!("{prefix}.light_scans")),
            threshold: registry.gauge(&format!("{prefix}.threshold")),
            heavy_keys: registry.gauge(&format!("{prefix}.heavy_keys")),
            view_entries: registry.gauge(&format!("{prefix}.view_entries")),
            base_pairs: registry.gauge(&format!("{prefix}.base_pairs")),
            published: HlStats::default(),
        };
        // A rebuilt engine (family replan) attaches fresh handles to the
        // same registry names: skip what the registry already counted so
        // the series stay cumulative across the swap.
        obs.published = HlStats {
            updates: obs.updates.get(),
            work: obs.work.get(),
            migrations: obs.migrations.get(),
            rebalances: obs.rebalances.get(),
            heavy_hits: obs.heavy_hits.get(),
            light_scans: obs.light_scans.get(),
        };
        self.obs = Some(obs);
        self.publish();
    }

    fn publish(&mut self) {
        let Some(obs) = self.obs.as_mut() else {
            return;
        };
        let s = self.stats;
        let p = obs.published;
        obs.updates.add(s.updates.saturating_sub(p.updates));
        obs.work.add(s.work.saturating_sub(p.work));
        obs.migrations
            .add(s.migrations.saturating_sub(p.migrations));
        obs.rebalances
            .add(s.rebalances.saturating_sub(p.rebalances));
        obs.heavy_hits
            .add(s.heavy_hits.saturating_sub(p.heavy_hits));
        obs.light_scans
            .add(s.light_scans.saturating_sub(p.light_scans));
        obs.published = s;
        obs.threshold.set(self.threshold as i64);
        obs.heavy_keys
            .set(self.heavy.iter().map(|h| h.len()).sum::<usize>() as i64);
        obs.view_entries
            .set(self.view.iter().map(|v| v.len()).sum::<usize>() as i64);
        obs.base_pairs
            .set(self.rel.iter().map(|r| r.len()).sum::<usize>() as i64);
    }

    /// Verify the partition invariants the hysteresis maintains after
    /// every update: a heavy key's degree exceeds θ, a light key's stays
    /// below 2θ, and no key is heavy without present pairs. For tests.
    pub fn check_partition(&self) -> Result<(), String> {
        for i in 0..3 {
            for x in &self.heavy[i] {
                let deg = self.rel[i].deg_fwd(x);
                if deg <= self.threshold {
                    return Err(format!(
                        "rel {} key {x:?}: heavy with degree {deg} ≤ θ={}",
                        self.rels[i], self.threshold
                    ));
                }
            }
            for x in self.rel[i].keys_fwd() {
                let deg = self.rel[i].deg_fwd(x);
                if !self.heavy[i].contains(x) && deg >= 2 * self.threshold {
                    return Err(format!(
                        "rel {} key {x:?}: light with degree {deg} ≥ 2θ={}",
                        self.rels[i],
                        2 * self.threshold
                    ));
                }
            }
        }
        Ok(())
    }

    /// Verify the three auxiliary views against a from-scratch recompute
    /// over the current partition. For tests; O(N·θ).
    pub fn check_views(&self) -> Result<(), String> {
        for i in 0..3 {
            let (j, k) = ((i + 1) % 3, (i + 2) % 3);
            let mut expect: FxHashMap<(Value, Value), R> = FxHashMap::default();
            for u in &self.heavy[j] {
                for (v, m1) in self.rel[j].row(u) {
                    if self.heavy[k].contains(v) {
                        continue;
                    }
                    for (w, m2) in self.rel[k].row(v) {
                        bump(&mut expect, (u.clone(), w.clone()), m1.times(m2));
                    }
                }
            }
            if expect != self.view[i] {
                return Err(format!(
                    "view[{i}] diverged: {} entries maintained vs {} recomputed",
                    self.view[i].len(),
                    expect.len()
                ));
            }
        }
        Ok(())
    }

    fn rot(&self, rel: Sym) -> Option<usize> {
        self.rels.iter().position(|&r| r == rel)
    }

    fn neg(&self, r: &R) -> R {
        r.try_neg()
            .expect("payload negation was validated at build time")
    }

    fn total_size(&self) -> usize {
        self.rel.iter().map(|r| r.len()).sum()
    }

    /// The skew-aware count delta for `δrel[i](x, y)` (Sec. 3.3): a
    /// light `y` enumerates its ≤ 2θ partners (LL + LH); a heavy `y`
    /// loops the ≤ N/θ heavy `rel[i+2]` keys (HH) and answers the HL
    /// case with one view lookup.
    fn count_delta(&mut self, i: usize, x: &Value, y: &Value) -> R {
        let (j, k) = ((i + 1) % 3, (i + 2) % 3);
        let mut d = R::zero();
        let mut work = 1u64;
        if !self.heavy[j].contains(y) {
            for (v, m1) in self.rel[j].row(y) {
                work += 1;
                let m2 = self.rel[k].get(v, x);
                if !m2.is_zero() {
                    d.add_assign(&m1.times(&m2));
                }
            }
            self.stats.light_scans += 1;
        } else {
            for v in &self.heavy[k] {
                work += 1;
                let m1 = self.rel[j].get(y, v);
                if m1.is_zero() {
                    continue;
                }
                let m2 = self.rel[k].get(v, x);
                if !m2.is_zero() {
                    d.add_assign(&m1.times(&m2));
                }
            }
            work += 1;
            if let Some(hl) = self.view[i].get(&(y.clone(), x.clone())) {
                d.add_assign(hl);
            }
            self.stats.heavy_hits += 1;
        }
        self.stats.work += work;
        d
    }

    /// Maintain the views that mention `rel[i]` under `δrel[i](x,y,m)`:
    /// `rel[i]` is the H-part of `view[i+2]` (at u = x) and the L-part of
    /// `view[i+1]` (at v = x).
    fn maintain_views(&mut self, i: usize, x: &Value, y: &Value, m: &R) {
        let (j, k) = ((i + 1) % 3, (i + 2) % 3);
        if self.heavy[i].contains(x) && !self.heavy[j].contains(y) {
            let row: Vec<(Value, R)> = self.rel[j]
                .row(y)
                .map(|(w, mj)| (w.clone(), mj.clone()))
                .collect();
            self.stats.work += row.len() as u64 + 1;
            for (w, mj) in row {
                bump(&mut self.view[k], (x.clone(), w), m.times(&mj));
            }
        }
        if !self.heavy[i].contains(x) {
            let heavy_k: Vec<Value> = self.heavy[k].iter().cloned().collect();
            self.stats.work += heavy_k.len() as u64 + 1;
            for u in heavy_k {
                let mk = self.rel[k].get(&u, x);
                if !mk.is_zero() {
                    bump(&mut self.view[j], (u, y.clone()), mk.times(m));
                }
            }
        }
    }

    /// Move `x` across the heavy/light boundary of partition `i`,
    /// transferring its contributions between `view[i+2]` (where it is
    /// an H-part key) and `view[i+1]` (where it is an L-part key) —
    /// the step that needs additive inverses.
    fn migrate(&mut self, i: usize, x: &Value, to_heavy: bool) {
        self.stats.migrations += 1;
        let (j, k) = ((i + 1) % 3, (i + 2) % 3);
        if to_heavy {
            self.heavy[i].insert(x.clone());
        } else {
            self.heavy[i].remove(x);
        }
        let row: Vec<(Value, R)> = self.rel[i]
            .row(x)
            .map(|(v, m)| (v.clone(), m.clone()))
            .collect();
        // H-part of view[k]: Σ_{v light in rel[j]} rel[i](x,v)·rel[j](v,w).
        for (v, m1) in &row {
            if !self.heavy[j].contains(v) {
                let inner: Vec<(Value, R)> = self.rel[j]
                    .row(v)
                    .map(|(w, m2)| (w.clone(), m2.clone()))
                    .collect();
                self.stats.work += inner.len() as u64 + 1;
                for (w, m2) in inner {
                    let d = m1.times(&m2);
                    let d = if to_heavy { d } else { self.neg(&d) };
                    bump(&mut self.view[k], (x.clone(), w), d);
                }
            }
        }
        // L-part of view[j]: Σ_{u heavy in rel[k]} rel[k](u,x)·rel[i](x,w)
        // — entering the heavy part removes these terms (and vice versa).
        let heavy_k: Vec<Value> = self.heavy[k].iter().cloned().collect();
        for u in heavy_k {
            let mk = self.rel[k].get(&u, x);
            if mk.is_zero() {
                continue;
            }
            self.stats.work += row.len() as u64 + 1;
            for (w, m1) in &row {
                let d = mk.times(m1);
                let d = if to_heavy { self.neg(&d) } else { d };
                bump(&mut self.view[j], (u.clone(), w.clone()), d);
            }
        }
    }

    /// Recompute θ, repartition every relation, and rebuild the three
    /// views from scratch. O(N·θ); amortized O(θ) over the ≥ N/2 updates
    /// between size-drift triggers.
    fn rebalance(&mut self) {
        self.stats.rebalances += 1;
        let n = self.total_size().max(4);
        self.base_n = n;
        self.threshold = (n as f64).powf(self.eps).ceil().max(1.0) as usize;
        let promote = (3 * self.threshold).div_ceil(2);
        for i in 0..3 {
            self.heavy[i] = self.rel[i]
                .keys_fwd()
                .filter(|x| self.rel[i].deg_fwd(x) >= promote)
                .cloned()
                .collect();
        }
        for i in 0..3 {
            let (j, k) = ((i + 1) % 3, (i + 2) % 3);
            self.view[i].clear();
            let heavy_j: Vec<Value> = self.heavy[j].iter().cloned().collect();
            for u in heavy_j {
                let rowj: Vec<(Value, R)> = self.rel[j]
                    .row(&u)
                    .map(|(v, m1)| (v.clone(), m1.clone()))
                    .collect();
                for (v, m1) in rowj {
                    if self.heavy[k].contains(&v) {
                        continue;
                    }
                    let inner: Vec<(Value, R)> = self.rel[k]
                        .row(&v)
                        .map(|(w, m2)| (w.clone(), m2.clone()))
                        .collect();
                    self.stats.work += inner.len() as u64 + 1;
                    for (w, m2) in inner {
                        bump(&mut self.view[i], (u.clone(), w), m1.times(&m2));
                    }
                }
            }
        }
    }

    /// The full single-update step; returns this update's contribution
    /// to the maintained count (already multiplied by `m`).
    fn apply_update(&mut self, i: usize, x: &Value, y: &Value, m: &R) -> R {
        self.stats.updates += 1;
        let d = self.count_delta(i, x, y);
        let contrib = m.times(&d);
        self.count.add_assign(&contrib);
        self.maintain_views(i, x, y, m);
        let new_deg = self.rel[i].apply(x, y, m);
        let is_heavy = self.heavy[i].contains(x);
        if !is_heavy && new_deg >= 2 * self.threshold {
            self.migrate(i, x, true);
        } else if is_heavy && new_deg <= self.threshold {
            self.migrate(i, x, false);
        }
        let n = self.total_size();
        if n > 2 * self.base_n || (n >= 8 && n * 2 < self.base_n) {
            self.rebalance();
        }
        contrib
    }

    /// Shared validation: the update must target one of the three
    /// rotation relations with a binary tuple.
    fn validate(&self, upd: &Update<R>) -> Result<usize, EngineError> {
        let i = self
            .rot(upd.relation)
            .ok_or(EngineError::UnknownRelation(upd.relation))?;
        if upd.tuple.arity() != 2 {
            return Err(EngineError::NotSupported(format!(
                "heavy-light relations are binary; got an arity-{} tuple \
                 for {}",
                upd.tuple.arity(),
                upd.relation
            )));
        }
        Ok(i)
    }

    fn ingest(&mut self, i: usize, upd: &Update<R>) -> R {
        if upd.payload.is_zero() {
            return R::zero();
        }
        let m = upd
            .payload
            .times(&(self.lift)(self.vars[i], upd.tuple.at(0)));
        if m.is_zero() {
            return R::zero();
        }
        self.apply_update(i, upd.tuple.at(0), upd.tuple.at(1), &m)
    }
}

impl<R: Semiring> Maintainer<R> for HeavyLightEngine<R> {
    fn query(&self) -> &Query {
        &self.query
    }

    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        let i = self.validate(upd)?;
        self.ingest(i, upd);
        self.publish();
        Ok(())
    }

    /// Native batch path: consolidate, apply, and return the exact
    /// output delta (the count's change) this batch propagated. The
    /// whole batch is validated up front, so rejection is atomic —
    /// matching the dataflow engines' failure granularity.
    fn apply_batch(&mut self, batch: &[Update<R>]) -> Result<Relation<R>, EngineError> {
        for upd in batch {
            self.validate(upd)?;
        }
        let mut delta = R::zero();
        for upd in consolidate(batch) {
            let i = self.rot(upd.relation).expect("validated above");
            delta.add_assign(&self.ingest(i, &upd));
        }
        self.publish();
        let mut out = Relation::new(self.query.free.clone());
        if !delta.is_zero() {
            out.apply(Tuple::empty(), &delta);
        }
        Ok(out)
    }

    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R)) {
        if !self.count.is_zero() {
            f(&Tuple::empty(), &self.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::lift_one;
    use ivm_data::{sym, tup};
    use ivm_query::examples;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn upd(rel: &str, x: i64, y: i64, m: i64) -> Update<i64> {
        Update::with_payload(sym(rel), tup!(x, y), m)
    }

    /// Brute-force `Σ R(a,b)·S(b,c)·T(c,a)` over a cumulative update log.
    fn oracle(log: &[Update<i64>]) -> i64 {
        let mut rels: [FxHashMap<(Value, Value), i64>; 3] = Default::default();
        let names = [sym("tri_R"), sym("tri_S"), sym("tri_T")];
        for u in log {
            let i = names.iter().position(|&n| n == u.relation).unwrap();
            let e = rels[i]
                .entry((u.tuple.at(0).clone(), u.tuple.at(1).clone()))
                .or_insert(0);
            *e += u.payload;
        }
        let mut total = 0i64;
        for ((a, b), m1) in &rels[0] {
            for ((b2, c), m2) in &rels[1] {
                if b2 != b {
                    continue;
                }
                let m3 = rels[2].get(&(c.clone(), a.clone())).copied().unwrap_or(0);
                total += m1 * m2 * m3;
            }
        }
        total
    }

    fn count(eng: &mut HeavyLightEngine<i64>) -> i64 {
        let mut out = 0;
        eng.for_each_output(&mut |t, r| {
            assert_eq!(t.arity(), 0);
            out = *r;
        });
        out
    }

    #[test]
    fn rejects_non_triangle_queries_and_inverse_free_payloads() {
        let db = Database::<i64>::new();
        let err = HeavyLightEngine::new(examples::path3_query(), &db, lift_one::<i64>).unwrap_err();
        assert!(matches!(err, EngineError::NotSupported(_)), "{err}");

        let bdb = Database::<ivm_ring::BoolSemiring>::new();
        let err = HeavyLightEngine::new(
            examples::triangle_count(),
            &bdb,
            lift_one::<ivm_ring::BoolSemiring>,
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::NotSupported(ref msg) if msg.contains("ring")),
            "{err}"
        );

        // Self-join triangles (one edge relation used three times) are out
        // of scope for the rotation detector.
        let err = HeavyLightEngine::new(examples::triangle_detect_cqap(), &db, lift_one::<i64>)
            .unwrap_err();
        assert!(matches!(err, EngineError::NotSupported(_)), "{err}");
    }

    #[test]
    fn rotation_accepts_any_atom_order() {
        let q = examples::triangle_count();
        let mut shuffled = q.clone();
        shuffled.atoms.rotate_left(1);
        let (rels, vars) = rotation(&shuffled).expect("rotated atom order still admitted");
        assert_eq!(vars.len(), 3);
        // The rotation starts at whatever atom is listed first.
        assert_eq!(rels[0], shuffled.atoms[0].name);
    }

    #[test]
    fn agrees_with_oracle_on_skewed_mixed_sign_streams() {
        let mut rng = StdRng::seed_from_u64(2024);
        let names = ["tri_R", "tri_S", "tri_T"];
        for &eps in &[0.0, 0.3, 0.5, 0.8, 1.0] {
            let mut eng = HeavyLightEngine::new_with_eps(
                examples::triangle_count(),
                &Database::new(),
                lift_one::<i64>,
                eps,
            )
            .unwrap();
            let mut log: Vec<Update<i64>> = Vec::new();
            for step in 0..250 {
                let rel = names[rng.gen_range(0..3usize)];
                let hub = rng.gen_bool(0.4);
                let x = if hub { 0 } else { rng.gen_range(0..8i64) };
                let y = rng.gen_range(0..8i64);
                let m = if rng.gen_bool(0.3) { -1 } else { 1 };
                let u = upd(rel, x, y, m);
                eng.apply(&u).unwrap();
                log.push(u);
                if step % 50 == 0 || step == 249 {
                    assert_eq!(count(&mut eng), oracle(&log), "eps={eps} step={step}");
                    eng.check_partition().unwrap();
                    eng.check_views().unwrap();
                }
            }
        }
    }

    #[test]
    fn batch_path_consolidates_and_returns_the_output_delta() {
        let mut eng = HeavyLightEngine::new(
            examples::triangle_count(),
            &Database::new(),
            lift_one::<i64>,
        )
        .unwrap();
        let setup = vec![
            upd("tri_R", 1, 2, 1),
            upd("tri_S", 2, 3, 1),
            upd("tri_T", 3, 1, 1),
        ];
        let d = eng.apply_batch(&setup).unwrap();
        assert_eq!(d.get(&Tuple::empty()), 1, "one triangle closed");
        // A self-cancelling batch propagates nothing.
        let noop = vec![upd("tri_R", 1, 9, 4), upd("tri_R", 1, 9, -4)];
        let d = eng.apply_batch(&noop).unwrap();
        assert!(d.is_empty());
        assert_eq!(count(&mut eng), 1);
        // A batch with one bad update is rejected atomically.
        let bad = vec![upd("tri_R", 7, 8, 1), upd("nope", 1, 2, 1)];
        assert!(eng.apply_batch(&bad).is_err());
        assert_eq!(count(&mut eng), 1, "rejected batch left no trace");
    }

    #[test]
    fn preprocessing_replays_the_initial_database() {
        let q = examples::triangle_count();
        let mut db = Database::<i64>::new();
        for atom in &q.atoms {
            db.create(atom.name, atom.schema.clone());
        }
        let mut log = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..120 {
            let u = upd(
                ["tri_R", "tri_S", "tri_T"][rng.gen_range(0..3usize)],
                rng.gen_range(0..6i64),
                rng.gen_range(0..6i64),
                1,
            );
            db.apply(&u);
            log.push(u);
        }
        let mut eng = HeavyLightEngine::new(q, &db, lift_one::<i64>).unwrap();
        assert_eq!(count(&mut eng), oracle(&log));
        eng.check_partition().unwrap();
        eng.check_views().unwrap();
    }

    #[test]
    fn rebalancing_and_migrations_kick_in_under_growth_and_skew() {
        let mut eng = HeavyLightEngine::new(
            examples::triangle_count(),
            &Database::new(),
            lift_one::<i64>,
        )
        .unwrap();
        for i in 0..400i64 {
            eng.apply(&upd("tri_R", 0, i, 1)).unwrap();
            eng.apply(&upd("tri_S", i, i + 1, 1)).unwrap();
            eng.apply(&upd("tri_T", i + 1, 0, 1)).unwrap();
        }
        let s = eng.stats();
        assert!(s.rebalances > 0, "size grew 300×: must rebalance");
        assert!(s.migrations > 0 || eng.heavy_counts()[0] > 0);
        assert!(s.heavy_hits > 0, "hub deltas must take the heavy path");
        // R(0,i)·S(i,i+1)·T(i+1,0) closes one triangle per i.
        assert_eq!(count(&mut eng), 400);
        let parts = eng.part_sizes();
        assert_eq!(parts[0].1, 1, "exactly the hub is heavy in R");
        assert!(eng.threshold() > 1);
        eng.check_partition().unwrap();
        eng.check_views().unwrap();
    }

    #[test]
    fn metrics_survive_reattachment_cumulatively() {
        let registry = MetricsRegistry::new();
        let mut eng = HeavyLightEngine::new(
            examples::triangle_count(),
            &Database::new(),
            lift_one::<i64>,
        )
        .unwrap();
        eng.observe(&registry, "ivm.hl");
        for i in 0..50i64 {
            eng.apply(&upd("tri_R", 0, i, 1)).unwrap();
        }
        let before = registry.counter("ivm.hl.updates").get();
        assert_eq!(before, 50);
        // A family replan rebuilds the engine and re-attaches: the series
        // must keep counting from where they were, not reset or double.
        let mut rebuilt = HeavyLightEngine::new(
            examples::triangle_count(),
            &Database::new(),
            lift_one::<i64>,
        )
        .unwrap();
        rebuilt.observe(&registry, "ivm.hl");
        rebuilt.apply(&upd("tri_R", 1, 2, 1)).unwrap();
        assert_eq!(registry.counter("ivm.hl.updates").get(), 51);
    }
}
