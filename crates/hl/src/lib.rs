//! Heavy-light partitioned maintenance — generic IVMε (paper Sec. 3.3).
//!
//! `ivm_ivme` proves the complexity story on a raw-`u64` triangle kernel;
//! this crate is the *engine family* version: the same heavy-light
//! partition, hysteresis band, auxiliary `H⋈L` views, and lazy global
//! rebalancing, but over [`ivm_data`] tuples with any ring payload and
//! behind the common [`ivm_core::Maintainer`] trait — so the session
//! layer can auto-select it, `explain()` it, adaptively swap to or away
//! from it mid-stream, and persist/recover it like every other backend.
//!
//! Amortized single-tuple updates cost O(N^max(ε,1−ε)) — O(√N) at the
//! default ε = ½ — against O(N^{1+min(ε,1−ε)}) auxiliary space, the
//! worst-case-optimal tradeoff for triangle-class cyclic queries.

pub mod adjacency;
pub mod engine;

pub use adjacency::Adj;
pub use engine::{admits, HeavyLightEngine, HlStats};
