//! `Value`-keyed adjacency storage with payloads in a semiring.
//!
//! The generic counterpart of `ivm_ivme`'s raw-`u64` `Adjacency`: one
//! binary relation indexed both ways, with per-key degrees (distinct
//! present partners) read in O(1) — the quantity the heavy-light
//! partition thresholds on.

use ivm_data::{FxHashMap, Value};
use ivm_ring::Semiring;

/// One binary relation `rel(x, y) ↦ R`, indexed by both columns.
#[derive(Clone, Debug)]
pub struct Adj<R> {
    fwd: FxHashMap<Value, FxHashMap<Value, R>>,
    bwd: FxHashMap<Value, FxHashMap<Value, R>>,
    len: usize,
}

impl<R: Semiring> Default for Adj<R> {
    fn default() -> Self {
        Adj {
            fwd: FxHashMap::default(),
            bwd: FxHashMap::default(),
            len: 0,
        }
    }
}

impl<R: Semiring> Adj<R> {
    /// Accumulate `m` onto `(x, y)` and return the new forward degree of
    /// `x`. Zero payloads are pruned so degrees count *present* pairs.
    /// Callers skip zero `m` (a no-op update would still allocate keys).
    pub fn apply(&mut self, x: &Value, y: &Value, m: &R) -> usize {
        Self::accumulate(&mut self.bwd, y, x, m, &mut 0);
        let mut delta = 0isize;
        let deg = Self::accumulate(&mut self.fwd, x, y, m, &mut delta);
        self.len = (self.len as isize + delta) as usize;
        deg
    }

    fn accumulate(
        side: &mut FxHashMap<Value, FxHashMap<Value, R>>,
        a: &Value,
        b: &Value,
        m: &R,
        delta: &mut isize,
    ) -> usize {
        let row = side.entry(a.clone()).or_default();
        let had = row.contains_key(b);
        let e = row.entry(b.clone()).or_insert_with(R::zero);
        e.add_assign(m);
        if e.is_zero() {
            row.remove(b);
            if had {
                *delta -= 1;
            }
        } else if !had {
            *delta += 1;
        }
        let deg = row.len();
        if deg == 0 {
            side.remove(a);
        }
        deg
    }

    /// The payload at `(x, y)` (zero when absent).
    pub fn get(&self, x: &Value, y: &Value) -> R {
        self.fwd
            .get(x)
            .and_then(|row| row.get(y))
            .cloned()
            .unwrap_or_else(R::zero)
    }

    /// Distinct present partners of `x` in the first column.
    pub fn deg_fwd(&self, x: &Value) -> usize {
        self.fwd.get(x).map_or(0, |row| row.len())
    }

    /// Distinct present partners of `y` in the second column.
    pub fn deg_bwd(&self, y: &Value) -> usize {
        self.bwd.get(y).map_or(0, |row| row.len())
    }

    /// The partners (and payloads) of `x`: all `(y, rel(x, y))`.
    pub fn row(&self, x: &Value) -> impl Iterator<Item = (&Value, &R)> {
        self.fwd.get(x).into_iter().flatten()
    }

    /// The reverse partners of `y`: all `(x, rel(x, y))`.
    pub fn col(&self, y: &Value) -> impl Iterator<Item = (&Value, &R)> {
        self.bwd.get(y).into_iter().flatten()
    }

    /// Every distinct first-column key.
    pub fn keys_fwd(&self) -> impl Iterator<Item = &Value> {
        self.fwd.keys()
    }

    /// Every present `(x, y, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &Value, &R)> {
        self.fwd
            .iter()
            .flat_map(|(x, row)| row.iter().map(move |(y, m)| (x, y, m)))
    }

    /// Present pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No present pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::Value;

    fn v(n: i64) -> Value {
        Value::Int(n)
    }

    #[test]
    fn degrees_track_present_pairs_not_multiplicities() {
        let mut adj: Adj<i64> = Adj::default();
        assert_eq!(adj.apply(&v(1), &v(2), &3), 1);
        assert_eq!(adj.apply(&v(1), &v(3), &1), 2);
        // Bumping an existing pair's multiplicity leaves the degree alone.
        assert_eq!(adj.apply(&v(1), &v(2), &4), 2);
        assert_eq!(adj.get(&v(1), &v(2)), 7);
        assert_eq!(adj.deg_bwd(&v(2)), 1);
        assert_eq!(adj.len(), 2);
        // Cancelling to zero removes the pair from both indexes.
        assert_eq!(adj.apply(&v(1), &v(2), &-7), 1);
        assert_eq!(adj.get(&v(1), &v(2)), 0);
        assert_eq!(adj.deg_bwd(&v(2)), 0);
        assert_eq!(adj.len(), 1);
    }
}
