//! The `explain()` report: which engine, why, and at what predicted cost.

use crate::classify::{Classification, QueryClass};
use crate::select::EngineKind;

/// Predicted asymptotic costs for one (class, engine) pairing, stated in
/// the paper's three-axis cost model: preprocessing, per-update work,
/// enumeration delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostProfile {
    /// One-off construction over the initial database.
    pub preprocessing: &'static str,
    /// Work per single-tuple update (batched paths amortize over |batch|).
    pub update: &'static str,
    /// Gap between consecutive enumerated output tuples (or access
    /// answers, for CQAP engines).
    pub delay: &'static str,
}

/// The predicted costs of running `engine` on a query of `class`.
pub fn cost_profile(class: QueryClass, engine: EngineKind) -> CostProfile {
    match engine {
        EngineKind::EagerFact => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(1)",
            delay: "O(1)",
        },
        EngineKind::EagerList => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(|δQ|) (delta enumeration into the listed output)",
            delay: "O(1) (listed)",
        },
        EngineKind::LazyFact => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(1) (queued)",
            delay: "O(1) after an O(#queued) refresh",
        },
        EngineKind::LazyList => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(1) (base tables only)",
            delay: "O(|D|) re-evaluation on every enumeration",
        },
        EngineKind::Cqap => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(1) (constant fan-out over atom occurrences)",
            delay: "O(1) per access answer; full enumeration pays the \
                    cross-component join the fracture severed",
        },
        EngineKind::DataflowLeftDeep => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(|δQ| + binary intermediates) per consolidated batch",
            delay: "O(1) from the materialized view",
        },
        EngineKind::DataflowMultiway => CostProfile {
            preprocessing: "O(|D|)",
            update: "worst-case-optimal per consolidated batch \
                     (no binary intermediates)",
            delay: "O(1) from the materialized view",
        },
        EngineKind::Sharded => match class {
            QueryClass::Cyclic => CostProfile {
                preprocessing: "O(|D|) split across shards",
                update: "worst-case-optimal per shard sub-batch, shards in \
                         parallel, deltas ⊎-merged",
                delay: "O(1) from the merged view (drain first when \
                        ingesting pipelined)",
            },
            _ => CostProfile {
                preprocessing: "O(|D|) split across shards",
                update: "O(|δQ|/shards) per shard sub-batch in parallel, \
                         deltas ⊎-merged",
                delay: "O(1) from the merged view (drain first when \
                        ingesting pipelined)",
            },
        },
    }
}

/// One recorded adaptive re-lowering of a session's plan.
#[derive(Clone, Debug)]
pub struct ReplanEvent {
    /// The session-wide ingestion index (1-based count of accepted
    /// `apply`/`apply_batch`/`enqueue_batch` calls — single updates count
    /// as one-update batches) after which the replan happened.
    pub batch_index: u64,
    /// The engine/plan before the replan.
    pub from: String,
    /// The engine/plan after the replan.
    pub to: String,
    /// The policy trigger, verbatim.
    pub reason: String,
}

impl std::fmt::Display for ReplanEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch {}: {} -> {} ({})",
            self.batch_index, self.from, self.to, self.reason
        )
    }
}

/// The report [`crate::Session::explain`] returns: everything the
/// selection decided and why, so "choosing nothing" stays auditable.
#[derive(Clone, Debug)]
pub struct Explain {
    /// `Debug`-rendered query.
    pub query: String,
    /// The raw analysis flags.
    pub classification: Classification,
    /// The engine the session stood up — kept current across adaptive
    /// replans (a blowup-triggered switch updates this and
    /// [`Explain::cost`]).
    pub engine: EngineKind,
    /// Shard count (1 unless a fleet was requested; the shard planner may
    /// clamp a degenerate plan back to 1).
    pub shards: usize,
    /// Why the dichotomy picked this engine.
    pub reason: String,
    /// Predicted costs on the paper's three axes, refreshed after every
    /// adaptive replan.
    pub cost: CostProfile,
    /// Set when the preferred specialized engine failed to build and the
    /// session fell back to the generic dataflow engine.
    pub fallback: Option<String>,
    /// Adaptive-replanning status: `None` when no policy was requested,
    /// otherwise one line saying whether the policy is armed (dataflow/
    /// sharded backends) or inert (the specialized engines' per-class
    /// guarantees leave nothing to replan).
    pub adaptive: Option<String>,
    /// Every adaptive re-lowering this session performed, in stream
    /// order: batch index, old/new plan, and the policy trigger.
    pub replans: Vec<ReplanEvent>,
}

impl Explain {
    /// The condensed class.
    pub fn class(&self) -> QueryClass {
        self.classification.class
    }
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "query:    {}", self.query)?;
        writeln!(f, "class:    {}", self.classification.class)?;
        writeln!(
            f,
            "analyses: hierarchical={} q-hierarchical={} acyclic={} \
             free-connex={} self-join-free={} access-pattern={}{}",
            self.classification.hierarchical,
            self.classification.q_hierarchical,
            self.classification.acyclic,
            self.classification.free_connex,
            self.classification.self_join_free,
            self.classification.has_access_pattern,
            if self.classification.has_access_pattern {
                if self.classification.tractable_cqap {
                    " (tractable)"
                } else {
                    " (intractable)"
                }
            } else {
                ""
            },
        )?;
        write!(f, "engine:   {}", self.engine)?;
        if self.shards > 1 {
            write!(f, " × {}", self.shards)?;
        }
        writeln!(f)?;
        writeln!(f, "why:      {}", self.reason)?;
        if let Some(fb) = &self.fallback {
            writeln!(f, "fallback: {fb}")?;
        }
        if let Some(ad) = &self.adaptive {
            writeln!(f, "adaptive: {ad}")?;
        }
        for ev in &self.replans {
            writeln!(f, "replan:   {ev}")?;
        }
        writeln!(f, "predicted: preprocessing {}", self.cost.preprocessing)?;
        writeln!(f, "           update        {}", self.cost.update)?;
        write!(f, "           delay         {}", self.cost.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_hierarchical_eager_fact_is_all_constant() {
        let p = cost_profile(QueryClass::QHierarchical, EngineKind::EagerFact);
        assert_eq!(p.update, "O(1)");
        assert_eq!(p.delay, "O(1)");
    }
}
