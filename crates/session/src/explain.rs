//! The `explain()` report: which engine, why, and at what predicted cost.

use crate::classify::{Classification, QueryClass};
use crate::select::EngineKind;
use ivm_dataflow::ReplanTrigger;

/// Predicted asymptotic costs for one (class, engine) pairing, stated in
/// the paper's three-axis cost model: preprocessing, per-update work,
/// enumeration delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostProfile {
    /// One-off construction over the initial database.
    pub preprocessing: &'static str,
    /// Work per single-tuple update (batched paths amortize over |batch|).
    pub update: &'static str,
    /// Gap between consecutive enumerated output tuples (or access
    /// answers, for CQAP engines).
    pub delay: &'static str,
}

/// The predicted costs of running `engine` on a query of `class`.
pub fn cost_profile(class: QueryClass, engine: EngineKind) -> CostProfile {
    match engine {
        EngineKind::EagerFact => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(1)",
            delay: "O(1)",
        },
        EngineKind::EagerList => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(|δQ|) (delta enumeration into the listed output)",
            delay: "O(1) (listed)",
        },
        EngineKind::LazyFact => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(1) (queued)",
            delay: "O(1) after an O(#queued) refresh",
        },
        EngineKind::LazyList => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(1) (base tables only)",
            delay: "O(|D|) re-evaluation on every enumeration",
        },
        EngineKind::Cqap => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(1) (constant fan-out over atom occurrences)",
            delay: "O(1) per access answer; full enumeration pays the \
                    cross-component join the fracture severed",
        },
        EngineKind::DataflowLeftDeep => CostProfile {
            preprocessing: "O(|D|)",
            update: "O(|δQ| + binary intermediates) per consolidated batch",
            delay: "O(1) from the materialized view",
        },
        EngineKind::DataflowMultiway => CostProfile {
            preprocessing: "O(|D|)",
            update: "worst-case-optimal per consolidated batch \
                     (no binary intermediates)",
            delay: "O(1) from the materialized view",
        },
        EngineKind::HeavyLight => CostProfile {
            preprocessing: "O(N^{1+min(\u{3b5},1\u{2212}\u{3b5})}) heavy-light views",
            update: "O(N^max(\u{3b5},1\u{2212}\u{3b5})) amortized per single-tuple \
                     update (sublinear; \u{221a}N at \u{3b5}=\u{bd})",
            delay: "O(1) from the maintained aggregate",
        },
        EngineKind::Sharded => match class {
            QueryClass::Cyclic => CostProfile {
                preprocessing: "O(|D|) split across shards",
                update: "worst-case-optimal per shard sub-batch, shards in \
                         parallel, deltas ⊎-merged",
                delay: "O(1) from the merged view (drain first when \
                        ingesting pipelined)",
            },
            _ => CostProfile {
                preprocessing: "O(|D|) split across shards",
                update: "O(|δQ|/shards) per shard sub-batch in parallel, \
                         deltas ⊎-merged",
                delay: "O(1) from the merged view (drain first when \
                        ingesting pipelined)",
            },
        },
    }
}

/// One recorded adaptive re-lowering of a session's plan.
#[derive(Clone, Debug)]
pub struct ReplanEvent {
    /// The session-wide ingestion index (1-based count of accepted
    /// `apply`/`apply_batch`/`enqueue_batch` calls — single updates count
    /// as one-update batches) after which the replan happened.
    pub batch_index: u64,
    /// The engine/plan before the replan.
    pub from: String,
    /// The engine/plan after the replan.
    pub to: String,
    /// Which policy trigger fired (machine-readable; its
    /// [`ReplanTrigger::name`] labels the timeline entry).
    pub trigger: ReplanTrigger,
    /// The policy trigger, verbatim.
    pub reason: String,
    /// Ingestion throughput (tuples/s) observed over the window that
    /// *ended* with this replan — the plan the policy walked away from.
    pub before_tps: f64,
    /// Ingestion throughput observed since this replan, refreshed on
    /// every later ingest. `None` until post-replan data arrives, so a
    /// replan on the final batch honestly reports "unmeasured" instead
    /// of a fabricated delta.
    pub after_tps: Option<f64>,
}

/// Render tuples/second compactly for the replan timeline: three
/// significant-ish digits with a `k`/`M` suffix keep the before→after
/// delta readable at a glance.
fn fmt_tps(tps: f64) -> String {
    if !tps.is_finite() || tps <= 0.0 {
        "0/s".to_string()
    } else if tps >= 1e6 {
        format!("{:.1}M/s", tps / 1e6)
    } else if tps >= 1e3 {
        format!("{:.1}k/s", tps / 1e3)
    } else {
        format!("{tps:.0}/s")
    }
}

impl std::fmt::Display for ReplanEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch {} [{}]: {} -> {} ({}); throughput {} -> {}",
            self.batch_index,
            self.trigger.name(),
            self.from,
            self.to,
            self.reason,
            fmt_tps(self.before_tps),
            self.after_tps.map_or("unmeasured".into(), fmt_tps),
        )
    }
}

/// The report [`crate::Session::explain`] returns: everything the
/// selection decided and why, so "choosing nothing" stays auditable.
#[derive(Clone, Debug)]
pub struct Explain {
    /// `Debug`-rendered query.
    pub query: String,
    /// The raw analysis flags.
    pub classification: Classification,
    /// The engine the session stood up — kept current across adaptive
    /// replans (a blowup-triggered switch updates this and
    /// [`Explain::cost`]).
    pub engine: EngineKind,
    /// Shard count (1 unless a fleet was requested; the shard planner may
    /// clamp a degenerate plan back to 1).
    pub shards: usize,
    /// Why the dichotomy picked this engine.
    pub reason: String,
    /// Predicted costs on the paper's three axes, refreshed after every
    /// adaptive replan.
    pub cost: CostProfile,
    /// Set when the preferred specialized engine failed to build and the
    /// session fell back to the generic dataflow engine.
    pub fallback: Option<String>,
    /// Adaptive-replanning status: `None` when no policy was requested,
    /// otherwise one line saying whether the policy is armed (dataflow/
    /// sharded backends) or inert (the specialized engines' per-class
    /// guarantees leave nothing to replan).
    pub adaptive: Option<String>,
    /// Every adaptive re-lowering this session performed, in stream
    /// order: batch index, old/new plan, and the policy trigger.
    pub replans: Vec<ReplanEvent>,
    /// Set when this session came back through
    /// [`crate::SessionBuilder::recover`]: the snapshot epoch it warm-
    /// started from and how much journal tail it replayed. `None` for a
    /// session built fresh.
    pub recovered: Option<String>,
    /// Live heavy-light partition state (\u{3b5}, threshold \u{3b8}, per-relation
    /// heavy/light part sizes), refreshed on every ingest while the
    /// heavy-light engine is the backend. `None` otherwise.
    pub heavy_light: Option<String>,
}

impl Explain {
    /// The condensed class.
    pub fn class(&self) -> QueryClass {
        self.classification.class
    }
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "query:    {}", self.query)?;
        writeln!(f, "class:    {}", self.classification.class)?;
        writeln!(
            f,
            "analyses: hierarchical={} q-hierarchical={} acyclic={} \
             free-connex={} self-join-free={} access-pattern={}{}",
            self.classification.hierarchical,
            self.classification.q_hierarchical,
            self.classification.acyclic,
            self.classification.free_connex,
            self.classification.self_join_free,
            self.classification.has_access_pattern,
            if self.classification.has_access_pattern {
                if self.classification.tractable_cqap {
                    " (tractable)"
                } else {
                    " (intractable)"
                }
            } else {
                ""
            },
        )?;
        write!(f, "engine:   {}", self.engine)?;
        if self.shards > 1 {
            write!(f, " × {}", self.shards)?;
        }
        writeln!(f)?;
        writeln!(f, "why:      {}", self.reason)?;
        if let Some(fb) = &self.fallback {
            writeln!(f, "fallback: {fb}")?;
        }
        if let Some(ad) = &self.adaptive {
            writeln!(f, "adaptive: {ad}")?;
        }
        if let Some(rec) = &self.recovered {
            writeln!(f, "recovered: {rec}")?;
        }
        if let Some(hl) = &self.heavy_light {
            writeln!(f, "sublinear: {hl}")?;
        }
        if !self.replans.is_empty() {
            writeln!(f, "replans:  {} (timeline below)", self.replans.len())?;
            for (i, ev) in self.replans.iter().enumerate() {
                writeln!(f, "  #{}: {ev}", i + 1)?;
            }
        }
        writeln!(f, "predicted: preprocessing {}", self.cost.preprocessing)?;
        writeln!(f, "           update        {}", self.cost.update)?;
        write!(f, "           delay         {}", self.cost.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_hierarchical_eager_fact_is_all_constant() {
        let p = cost_profile(QueryClass::QHierarchical, EngineKind::EagerFact);
        assert_eq!(p.update, "O(1)");
        assert_eq!(p.delay, "O(1)");
    }

    #[test]
    fn replan_event_renders_trigger_and_throughput_delta() {
        let ev = ReplanEvent {
            batch_index: 3,
            from: "DataflowLeftDeep".into(),
            to: "DataflowMultiway".into(),
            trigger: ReplanTrigger::Blowup,
            reason: "observed binary blowup".into(),
            before_tps: 1500.0,
            after_tps: None,
        };
        let line = ev.to_string();
        assert!(line.contains("batch 3 [blowup]"), "{line}");
        assert!(line.contains("1.5k/s -> unmeasured"), "{line}");
        let ev = ReplanEvent {
            after_tps: Some(2_500_000.0),
            ..ev
        };
        assert!(ev.to_string().contains("-> 2.5M/s"), "{}", ev);
    }
}
