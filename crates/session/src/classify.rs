//! The dichotomy analyses, bundled into one verdict.
//!
//! The paper's central message is that maintenance should start with
//! *classification*: the syntactic class of the query decides which
//! complexity an engine can achieve, before a single tuple flows. This
//! module runs every analysis `ivm_query` provides and condenses them
//! into the [`QueryClass`] that drives engine selection in
//! [`crate::select`].

use ivm_query::acyclic::{is_acyclic, is_free_connex};
use ivm_query::{is_hierarchical, is_q_hierarchical, is_tractable_cqap, Query};

/// The class the selection dichotomy branches on, in precedence order.
///
/// The classes are not disjoint as query properties (every q-hierarchical
/// query is free-connex acyclic, Sec. 4.1); `classify` reports the
/// *strongest* applicable class, because that is the one whose engine has
/// the best guarantees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryClass {
    /// Has an access pattern `Q(O | I)` and is a tractable CQAP
    /// (Thm 4.8): O(1) update, O(1) access delay.
    CqapTractable,
    /// q-hierarchical (Thm 4.1): O(|D|) preprocessing, O(1) single-tuple
    /// update, O(1) enumeration delay.
    QHierarchical,
    /// α-acyclic but not q-hierarchical: no O(1)-update engine exists
    /// (conditional on OuMv), but acyclic join plans avoid intermediate
    /// blow-up beyond O(|δQ|) per batch.
    Acyclic,
    /// Cyclic hypergraph (triangle, 4-cycle, …): worst-case-optimal
    /// multiway delta joins are the only plans that avoid binary
    /// intermediates dwarfing the output (Sec. 3.3).
    Cyclic,
}

impl std::fmt::Display for QueryClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QueryClass::CqapTractable => "tractable CQAP",
            QueryClass::QHierarchical => "q-hierarchical",
            QueryClass::Acyclic => "acyclic (not q-hierarchical)",
            QueryClass::Cyclic => "cyclic",
        })
    }
}

/// Everything the analyses said about one query — the raw flags behind
/// the condensed [`QueryClass`], kept so `explain()` can show its work.
#[derive(Clone, Debug)]
pub struct Classification {
    /// The strongest applicable class (selection branches on this).
    pub class: QueryClass,
    /// Hierarchical (Def. 4.2, without the freeness condition).
    pub hierarchical: bool,
    /// q-hierarchical (Def. 4.2).
    pub q_hierarchical: bool,
    /// α-acyclic by GYO reduction.
    pub acyclic: bool,
    /// Free-connex: acyclic and still acyclic with a head hyperedge.
    pub free_connex: bool,
    /// No relation symbol occurs twice. View trees require this
    /// (per-relation storage is keyed by name), so a q-hierarchical
    /// *self-join* still runs on the dataflow engine.
    pub self_join_free: bool,
    /// The query declares input variables (`Q(O | I)`).
    pub has_access_pattern: bool,
    /// The access pattern satisfies Thm 4.8 (hierarchical + free- and
    /// input-dominant after fracturing).
    pub tractable_cqap: bool,
    /// The heavy-light (IVMε) engine admits this query: a triangle-class
    /// cycle of three distinct binary relations with no free variables,
    /// the shape with sublinear O(N^max(ε,1−ε)) amortized updates
    /// (Sec. 3.3). Feeds both auto-selection and the adaptive layer's
    /// cross-family replanning.
    pub hl_eligible: bool,
}

/// Run every dichotomy analysis on `q`.
pub fn classify(q: &Query) -> Classification {
    let has_access_pattern = !q.input.is_empty();
    let tractable_cqap = has_access_pattern && is_tractable_cqap(q);
    let hierarchical = is_hierarchical(q);
    let q_hierarchical = is_q_hierarchical(q);
    let acyclic = is_acyclic(q);
    let free_connex = acyclic && is_free_connex(q);
    let self_join_free = q.is_self_join_free();
    let hl_eligible = ivm_hl::admits(q);
    let class = if tractable_cqap {
        QueryClass::CqapTractable
    } else if q_hierarchical {
        QueryClass::QHierarchical
    } else if acyclic {
        QueryClass::Acyclic
    } else {
        QueryClass::Cyclic
    };
    Classification {
        class,
        hierarchical,
        q_hierarchical,
        acyclic,
        free_connex,
        self_join_free,
        has_access_pattern,
        tractable_cqap,
        hl_eligible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_query::examples;

    #[test]
    fn paper_examples_land_in_their_classes() {
        assert_eq!(
            classify(&examples::fig3_query()).class,
            QueryClass::QHierarchical
        );
        assert_eq!(
            classify(&examples::retailer_query().0).class,
            QueryClass::QHierarchical
        );
        assert_eq!(
            classify(&examples::triangle_count()).class,
            QueryClass::Cyclic
        );
        assert_eq!(
            classify(&examples::triangle_detect_cqap()).class,
            QueryClass::CqapTractable
        );
        assert_eq!(
            classify(&examples::path3_query()).class,
            QueryClass::Acyclic
        );
        assert_eq!(classify(&examples::ex51_query()).class, QueryClass::Acyclic);
        // The intractable CQAP falls through to the underlying hypergraph
        // class (cyclic: it is the triangle).
        let c = classify(&examples::edge_triangle_listing_cqap());
        assert!(c.has_access_pattern && !c.tractable_cqap);
        assert_eq!(c.class, QueryClass::Cyclic);
    }

    #[test]
    fn hl_eligibility_is_reported() {
        // The distinct-relation triangle is the heavy-light shape; the
        // self-join triangle and the acyclic chain are not.
        assert!(classify(&examples::triangle_count()).hl_eligible);
        assert!(!classify(&examples::triangle_detect_cqap()).hl_eligible);
        assert!(!classify(&examples::path3_query()).hl_eligible);
    }

    #[test]
    fn self_join_flag_is_reported() {
        assert!(!classify(&examples::triangle_detect_cqap()).self_join_free);
        assert!(classify(&examples::fig3_query()).self_join_free);
    }
}
