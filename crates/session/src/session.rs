//! The uniform [`Session`] handle and its builder.

use crate::classify::classify;
use crate::explain::{cost_profile, Explain, ReplanEvent};
use crate::select::{select, EngineKind, Selection};
use ivm_core::cqap::CqapEngine;
use ivm_core::{
    EagerFactEngine, EagerListEngine, EngineError, LazyFactEngine, LazyListEngine, Maintainer,
};
use ivm_data::ops::{lift_one, Lift};
use ivm_data::{Database, FxHashSet, Persist, Relation, Sym, Tuple, Update};
use ivm_dataflow::{
    DataflowEngine, DataflowStats, EngineFamily, FamilyDecision, JoinStrategy,
    LearnedCardinalities, ReplanDecision, ReplanPolicy, ReplanTrigger, StoreHub,
};
use ivm_hl::HeavyLightEngine;
use ivm_obs::{
    Counter, Histogram, LabelId, MetricsRegistry, MetricsServer, MetricsSnapshot, Span, Tracer,
};
use ivm_query::Query;
use ivm_ring::Semiring;
use ivm_shard::{ShardedEngine, ShardedStats};
use ivm_store::{record_recovery_failure, Recovered, SnapshotDoc, Store};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Instant;

/// Configures and builds a [`Session`].
///
/// Obtained from [`Session::builder`]. "Choosing nothing" is the intended
/// use: [`SessionBuilder::build`] runs the dichotomy analyses and stands
/// up the engine the query's class admits. The knobs exist for the cases
/// where the caller knows more than the classifier:
///
/// * [`SessionBuilder::shards`] — scale out across a hash-partitioned
///   worker fleet instead of one thread;
/// * [`SessionBuilder::engine`] — force a specific engine kind
///   (benchmark comparison rows; the dichotomy is bypassed, and an
///   engine that rejects the query surfaces its error unchanged);
/// * [`SessionBuilder::lift`] — a custom payload lifting, e.g. the
///   covariance ring for in-database learning.
pub struct SessionBuilder<R: Semiring> {
    query: Query,
    lift: Lift<R>,
    shards: Option<usize>,
    forced: Option<EngineKind>,
    adaptive: Option<ReplanPolicy>,
    observe: Option<MetricsRegistry>,
    serve_metrics: Option<String>,
    shared: Option<StoreHub<R>>,
    /// `(store directory, monomorphized append hook, snapshot hook)` —
    /// the hooks capture the `R: Persist` bound at
    /// [`SessionBuilder::durable`] time, so the write-ahead path in the
    /// `Persist`-agnostic ingestion code can journal (and auto-snapshot)
    /// without constraining every session payload type.
    durable: Option<(PathBuf, JournalAppend<R>, SnapshotFn<R>)>,
    /// Journal-bytes threshold for automatic snapshot consolidation (see
    /// [`SessionBuilder::auto_snapshot`]).
    auto_snapshot: Option<u64>,
}

/// The strategy tag a heavy-light-backed session persists in its
/// snapshots. Disjoint from every [`JoinStrategy::tag`] value, so
/// [`JoinStrategy::from_tag`] returns `None` for it and recovery routes
/// it through *family* reconciliation instead of plan re-lowering — a
/// recovered session re-lowers to exactly the engine family the dead
/// session was running.
const HL_STRATEGY_TAG: u8 = 7;

/// The monomorphized journal-append hook a durable session carries (see
/// [`SessionBuilder::durable`] for why it is a `fn` pointer).
type JournalAppend<R> = fn(&mut Store, u64, &[Update<R>]);

/// The monomorphized snapshot hook behind
/// [`SessionBuilder::auto_snapshot`] — same pattern as [`JournalAppend`]:
/// [`Session::snapshot`] needs `R: Persist`, the ingestion paths that
/// trigger it do not.
type SnapshotFn<R> = fn(&mut Session<R>) -> Result<u64, EngineError>;

fn journal_append<R: Semiring + Persist>(store: &mut Store, epoch: u64, batch: &[Update<R>]) {
    store.append(epoch, batch);
}

fn snapshot_hook<R: Semiring + Persist>(session: &mut Session<R>) -> Result<u64, EngineError> {
    session.snapshot()
}

impl<R: Semiring> SessionBuilder<R> {
    /// Start configuring a session for `query`.
    pub fn new(query: Query) -> Self {
        SessionBuilder {
            query,
            lift: lift_one,
            shards: None,
            forced: None,
            adaptive: None,
            observe: None,
            serve_metrics: None,
            shared: None,
            durable: None,
            auto_snapshot: None,
        }
    }

    /// Request a sharded fleet of `n` hash-partitioned workers (clamped
    /// to ≥ 1; the shard planner may clamp a degenerate plan back to one
    /// worker — `explain()` reports the fleet actually stood up).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n.max(1));
        self
    }

    /// Bypass auto-selection and force `kind`. With
    /// [`EngineKind::Sharded`] the fleet size comes from
    /// [`SessionBuilder::shards`] (default 2); combining any *other*
    /// forced kind with a `.shards(n)` request is contradictory and
    /// makes [`SessionBuilder::build`] fail instead of silently dropping
    /// the fleet.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.forced = Some(kind);
        self
    }

    /// Use a custom payload lifting instead of `lift_one`.
    pub fn lift(mut self, lift: Lift<R>) -> Self {
        self.lift = lift;
        self
    }

    /// Attach a metrics registry: the session and its backend publish
    /// live counters, gauges, and latency histograms into `registry`.
    ///
    /// Session-level series live under `ivm.session.*` (ingestion calls,
    /// tuples, wall-clock ingest latency, replans). A dataflow-backed
    /// session additionally publishes per-operator apply time and tuple
    /// counters under `ivm.dataflow.*`; a sharded fleet publishes
    /// per-shard queue depth, enqueue-to-settle latency, busy/idle time,
    /// and router-side timings under `ivm.fleet.*`, with each worker's
    /// operators under `ivm.fleet.shard{i}.dataflow.*`. Adaptive replans
    /// re-attach the fresh plan automatically, so series survive
    /// re-lowering (counters stay cumulative across the reset).
    ///
    /// Without this call every metrics hook in the stack stays a no-op
    /// (`Option` fields left `None` — nothing is allocated or timed), and
    /// [`Session::metrics`] returns an empty snapshot.
    pub fn observe(mut self, registry: &MetricsRegistry) -> Self {
        self.observe = Some(registry.clone());
        self
    }

    /// Expose the attached registry over HTTP while the session lives:
    /// a dependency-free scrape endpoint bound to `addr` (use port 0 to
    /// let the OS pick; [`Session::metrics_addr`] reports the bound
    /// address). Serves `/metrics` (Prometheus text), `/snapshot.json`
    /// (the full [`MetricsSnapshot`]), and `/epochs.json` (recent
    /// per-epoch latency waterfalls). Requires
    /// [`SessionBuilder::observe`]; the server shuts down when the
    /// session is dropped.
    pub fn serve_metrics(mut self, addr: impl Into<String>) -> Self {
        self.serve_metrics = Some(addr.into());
        self
    }

    /// Join the multiway trie stores of a coordinator-owned
    /// [`StoreHub`]: where the session's lowered plan probes a relation
    /// another hub member also maintains, both engines read one shared
    /// store instead of mirroring it (see
    /// [`DataflowEngine::share_stores`]). The serving layer (`ivm-serve`)
    /// is the intended caller — its node advances the hub exactly once
    /// per ingest batch via [`StoreHub::advance_batch`], after every
    /// member engine has processed the batch.
    ///
    /// The hook is a no-op for backends without multiway trie stores
    /// (specialized engines, pure left-deep plans). It is refused in
    /// combination with [`SessionBuilder::adaptive`] (a replan re-lowers
    /// the plan mid-epoch, which would desynchronize the hub's
    /// deferred-advance protocol) and with sharded fleets (worker threads
    /// own their stores).
    pub fn shared_stores(mut self, hub: &StoreHub<R>) -> Self {
        self.shared = Some(hub.clone());
        self
    }

    /// Make the session durable: start a **new** journal (and snapshot
    /// slot) in the directory at `path`, created if missing — any
    /// previous history there is discarded (resume one with
    /// [`SessionBuilder::recover`] instead).
    ///
    /// Every ingestion call is then journaled *write-ahead*: the batch is
    /// appended and fsynced under a fresh epoch before the backend sees
    /// it, so a crash mid-apply loses nothing that was acknowledged.
    /// [`Session::snapshot`] consolidates the history into one atomic
    /// snapshot file and truncates the journal behind it, bounding
    /// recovery time by the tail since the last snapshot rather than
    /// total history. With [`SessionBuilder::observe`] attached, the
    /// store publishes `ivm.store.*` series (append/fsync latency,
    /// Arm adaptive replanning under `policy`.
    ///
    /// The session then mirrors the base state it feeds the engine,
    /// learns live relation cardinalities from every applied batch, and —
    /// when the policy decides a re-lowering pays for itself (first data
    /// after an empty-database build, observed binary-join blowup, or a
    /// predicted cost ratio from the learned counts; all with hysteresis)
    /// — re-derives the plan's atom/variable orders via
    /// `DataflowEngine::replan_with_cards`, broadcast fleet-wide for
    /// sharded sessions. Every replan is recorded in
    /// [`Explain::replans`], and [`Explain::engine`]/[`Explain::cost`]
    /// track the plan actually running.
    ///
    /// Only the generic dataflow and sharded backends can replan; for a
    /// specialized engine (whose per-class guarantees leave nothing to
    /// re-derive) the policy is recorded as inert in `explain()` and the
    /// session behaves as if it were absent — no mirror is kept.
    pub fn adaptive(mut self, policy: ReplanPolicy) -> Self {
        self.adaptive = Some(policy);
        self
    }

    /// Classify the query, select the engine, build it over `db`, and
    /// return the uniform handle.
    ///
    /// When the dichotomy's preferred *specialized* engine unexpectedly
    /// fails to build, auto-selection falls back to the generic dataflow
    /// engine and records the fallback in `explain()`; a *forced* engine
    /// propagates its build error unchanged — forcing is how callers ask
    /// the dichotomy to be enforced rather than routed around.
    pub fn build(self, db: &Database<R>) -> Result<Session<R>, EngineError> {
        // The adaptive window clock starts *here*, not after the backend
        // stands up: the first window then spans classification, build,
        // and preprocessing, so a replan firing on the very first batch
        // still has a non-degenerate throughput denominator behind its
        // `before_tps` evidence.
        let built_at = Instant::now();
        // A shard request combined with a forced single-threaded engine is
        // contradictory; dropping either half silently would hand the
        // caller an unauditable session, so refuse instead.
        if let (Some(kind), Some(n)) = (self.forced, self.shards) {
            if kind != EngineKind::Sharded {
                return Err(EngineError::NotSupported(format!(
                    "conflicting session request: .shards({n}) asks for a \
                     fleet but .engine({kind:?}) forces a single-threaded \
                     engine; drop one of the two (only EngineKind::Sharded \
                     composes with .shards)"
                )));
            }
        }
        // Shared trie stores follow a coordinator-driven advance protocol
        // (one `StoreHub::advance_batch` per ingest epoch, after every
        // member searched). A mid-stream replan re-lowers the plan with
        // fresh stores *between* a member's search and the hub's advance,
        // and a sharded fleet hides its engines on worker threads — both
        // would break the protocol silently, so refuse up front.
        if self.shared.is_some() {
            if self.adaptive.is_some() {
                return Err(EngineError::NotSupported(
                    "conflicting session request: .shared_stores() joins a \
                     coordinator-advanced store hub but .adaptive() re-lowers \
                     the plan mid-stream; drop one of the two"
                        .into(),
                ));
            }
            if self.shards.is_some() || self.forced == Some(EngineKind::Sharded) {
                return Err(EngineError::NotSupported(
                    "conflicting session request: .shared_stores() needs the \
                     engine on the calling thread but a sharded fleet owns \
                     its engines on workers; drop one of the two"
                        .into(),
                ));
            }
        }
        let cls = classify(&self.query);
        let mut selection = match self.forced {
            Some(kind) => Selection {
                kind,
                reason: "forced by the caller (auto-selection bypassed)".into(),
            },
            None => select(&cls, self.shards),
        };
        let forced = self.forced.is_some();
        // A store hub shares multiway trie stores, which the heavy-light
        // engine does not keep — joining it would silently share nothing.
        // Demote an auto-selected heavy-light to the multiway dataflow
        // plan the hub can dedup (a *forced* heavy-light is honored; the
        // hub hook is then a no-op, same as for every specialized engine).
        if self.shared.is_some() && !forced && selection.kind == EngineKind::HeavyLight {
            selection = Selection {
                kind: EngineKind::DataflowMultiway,
                reason: format!(
                    "{} — demoted to the multiway dataflow plan: \
                     .shared_stores() dedups multiway trie stores, which \
                     the heavy-light engine does not keep",
                    selection.reason
                ),
            };
        }
        let mut fallback = None;
        let mut backend =
            match Self::build_backend(selection.kind, &self.query, db, self.lift, self.shards) {
                Ok(b) => b,
                Err(e) if !forced && selection.kind.is_specialized() => {
                    // Safety net: the analyses admit the class but the
                    // concrete engine refused (e.g. a variable-order corner).
                    // The generic engine accepts any query shape.
                    fallback = Some(format!(
                        "{} failed to build ({e}); fell back to the generic \
                     dataflow engine",
                        selection.kind
                    ));
                    Backend::Dataflow(DataflowEngine::new_with_strategy(
                        self.query.clone(),
                        db,
                        self.lift,
                        JoinStrategy::Auto,
                    )?)
                }
                Err(e) => return Err(e),
            };
        let engine = backend.kind();
        let shards = match &backend {
            Backend::Sharded(s) => s.shards(),
            _ => 1,
        };
        // The selection reason describes the engine *preferred*; after a
        // fallback the engine *running* is dataflow and the preferred
        // engine's guarantees no longer apply — say so instead of
        // repeating them next to the wrong engine name.
        let reason = match &fallback {
            None => selection.reason,
            Some(fb) => format!(
                "auto-selection preferred {} — {} — but {fb}; the \
                 specialized guarantees do not apply to this session",
                selection.kind, selection.reason
            ),
        };
        // Attach observability before the first batch, so even
        // preprocessing-era series start from a known base. Backends
        // without dataflow internals still get the session-level series.
        let obs = match &self.observe {
            None => None,
            Some(registry) => {
                match &mut backend {
                    Backend::Dataflow(e) => e.observe(registry, "ivm.dataflow"),
                    Backend::Sharded(s) => s.observe(registry, "ivm.fleet")?,
                    Backend::HeavyLight(e) => e.observe(registry, "ivm.hl"),
                    _ => {}
                }
                Some(SessionObs {
                    registry: registry.clone(),
                    tracer: registry.tracer().clone(),
                    root_label: registry.tracer().intern("session.ingest"),
                    ingest_ns: registry.histogram("ivm.session.ingest_ns"),
                    batches: registry.counter("ivm.session.batches"),
                    updates: registry.counter("ivm.session.updates"),
                    replans: registry.counter("ivm.session.replans"),
                })
            }
        };
        // The scrape endpoint serves whatever the registry holds, so it
        // needs one attached — and binding can fail (port in use), which
        // must surface at build time, not as a silently dead endpoint.
        let metrics_server = match &self.serve_metrics {
            None => None,
            Some(addr) => {
                let Some(registry) = &self.observe else {
                    return Err(EngineError::NotSupported(
                        ".serve_metrics() exposes the attached registry over \
                         HTTP, but no registry is attached; call .observe(...) \
                         as well"
                            .into(),
                    ));
                };
                Some(MetricsServer::start(addr, registry).map_err(|e| {
                    EngineError::NotSupported(format!(
                        ".serve_metrics({addr:?}) failed to bind: {e}"
                    ))
                })?)
            }
        };
        // Join the store hub after preprocessing: the freshly built owned
        // stores hold exactly the base state every other member's shared
        // store holds at this epoch, so adopting (or donating) them is a
        // pure storage dedup with no behavioral change. Gated on
        // all-dynamic queries: the hub advances stores by relation name,
        // and a static occurrence must never alias a store another
        // member's updates advance.
        let mut shared_store_hits = 0;
        if let (Some(hub), Backend::Dataflow(e)) = (&self.shared, &mut backend) {
            if self.query.atoms.iter().all(|a| a.dynamic) {
                shared_store_hits = e.share_stores(hub);
            }
        }
        // Arm adaptive replanning only where a re-lowering exists to
        // trigger; the mirror is only paid for when it can be used.
        let (adaptive_note, adaptive) = match self.adaptive {
            None => (None, None),
            Some(policy) => {
                if matches!(
                    backend,
                    Backend::Dataflow(_) | Backend::Sharded(_) | Backend::HeavyLight(_)
                ) {
                    (
                        Some(format!("armed ({policy:?}); replans are recorded below")),
                        Some(AdaptiveState {
                            policy,
                            learned: LearnedCardinalities::new(),
                            mirror: mirror_db(&self.query, db),
                            query: self.query.clone(),
                            lift: self.lift,
                            // Cross-family re-selection needs both the
                            // query shape (a triangle-class cycle) and a
                            // payload the heavy-light views can subtract.
                            hl_eligible: cls.hl_eligible && R::one().try_neg().is_some(),
                            batch_index: 0,
                            batches_since_replan: 0,
                            window_base: DataflowStats::default(),
                            window_started: built_at,
                            window_updates: 0,
                        }),
                    )
                } else {
                    (
                        Some(format!(
                            "requested but inert: {engine} carries its class's \
                             static guarantees, so there is no plan to re-derive"
                        )),
                        None,
                    )
                }
            }
        };
        // Stand up the durable store last: once it exists, every epoch the
        // session acknowledges is journaled, so nothing built above may
        // still fail. `durable()` starts a fresh history by contract.
        if self.auto_snapshot.is_some() && self.durable.is_none() {
            return Err(EngineError::NotSupported(
                ".auto_snapshot() consolidates the durable journal, but the \
                 session is in-memory; call .durable(path) (or .recover) as \
                 well"
                    .into(),
            ));
        }
        let durable = match &self.durable {
            None => None,
            Some((path, append, snap)) => {
                let mut store =
                    Store::create(path).map_err(|e| EngineError::Store(e.to_string()))?;
                if let Some(registry) = &self.observe {
                    store.observe(registry);
                }
                Some(DurableState {
                    store,
                    epoch: 0,
                    mirror: mirror_db(&self.query, db),
                    append: *append,
                    auto_snapshot: self.auto_snapshot.map(|bytes| (bytes, *snap)),
                })
            }
        };
        let explain = Explain {
            query: format!("{:?}", self.query),
            classification: cls.clone(),
            engine,
            shards,
            reason,
            cost: cost_profile(cls.class, engine),
            fallback,
            adaptive: adaptive_note,
            replans: Vec::new(),
            recovered: None,
            heavy_light: None,
        };
        let mut session = Session {
            backend,
            explain,
            adaptive,
            obs,
            metrics_server,
            shared_store_hits,
            durable,
        };
        session.refresh_hl_note();
        Ok(session)
    }

    fn build_backend(
        kind: EngineKind,
        query: &Query,
        db: &Database<R>,
        lift: Lift<R>,
        shards: Option<usize>,
    ) -> Result<Backend<R>, EngineError> {
        Ok(match kind {
            EngineKind::EagerFact => {
                Backend::EagerFact(EagerFactEngine::new(query.clone(), db, lift)?)
            }
            EngineKind::EagerList => {
                Backend::EagerList(EagerListEngine::new(query.clone(), db, lift)?)
            }
            EngineKind::LazyFact => {
                Backend::LazyFact(LazyFactEngine::new(query.clone(), db, lift)?)
            }
            EngineKind::LazyList => {
                Backend::LazyList(LazyListEngine::new(query.clone(), db, lift)?)
            }
            EngineKind::Cqap => {
                let mut eng = CqapEngine::new(query.clone(), lift)?;
                // CqapEngine has no database constructor: preprocess by
                // replaying the initial contents of every atom relation —
                // O(|D|) with constant work per tuple, same as the others.
                let mut seen: FxHashSet<Sym> = FxHashSet::default();
                for atom in &query.atoms {
                    if seen.insert(atom.name) {
                        if let Some(rel) = db.get(atom.name) {
                            for (t, r) in rel.iter() {
                                eng.apply(&Update::with_payload(atom.name, t.clone(), r.clone()))?;
                            }
                        }
                    }
                }
                Backend::Cqap(eng)
            }
            EngineKind::HeavyLight => {
                Backend::HeavyLight(HeavyLightEngine::new(query.clone(), db, lift)?)
            }
            EngineKind::DataflowLeftDeep => Backend::Dataflow(DataflowEngine::new_with_strategy(
                query.clone(),
                db,
                lift,
                JoinStrategy::LeftDeep,
            )?),
            EngineKind::DataflowMultiway => Backend::Dataflow(DataflowEngine::new_with_strategy(
                query.clone(),
                db,
                lift,
                JoinStrategy::Multiway,
            )?),
            EngineKind::Sharded => Backend::Sharded(ShardedEngine::new(
                query.clone(),
                db,
                lift,
                shards.unwrap_or(2),
            )?),
        })
    }
}

impl<R: Semiring + Persist> SessionBuilder<R> {
    /// Make the session durable: start a **new** journal (and snapshot
    /// slot) in the directory at `path`, created if missing — any
    /// previous history there is discarded (resume one with
    /// [`SessionBuilder::recover`] instead).
    ///
    /// Every ingestion call is then journaled *write-ahead*: the batch is
    /// appended and fsynced under a fresh epoch before the backend sees
    /// it, so a crash mid-apply loses nothing that was acknowledged.
    /// [`Session::snapshot`] consolidates the history into one atomic
    /// snapshot file and truncates the journal behind it, bounding
    /// recovery time by the tail since the last snapshot rather than
    /// total history. With [`SessionBuilder::observe`] attached, the
    /// store publishes `ivm.store.*` series (append/fsync latency,
    /// journal/snapshot bytes, record/commit/snapshot counts).
    pub fn durable(mut self, path: impl Into<PathBuf>) -> Self {
        self.durable = Some((path.into(), journal_append::<R>, snapshot_hook::<R>));
        self
    }

    /// Consolidate the journal automatically: whenever it grows past
    /// `journal_bytes`, the next acknowledged ingestion call runs
    /// [`Session::snapshot`] before returning — bounding both recovery
    /// time and on-disk history without any caller-side bookkeeping
    /// (clamped to ≥ 1 byte; manual snapshots remain available and reset
    /// the same journal). Requires [`SessionBuilder::durable`] (or
    /// [`SessionBuilder::recover`]); an in-memory build refuses it.
    pub fn auto_snapshot(mut self, journal_bytes: u64) -> Self {
        self.auto_snapshot = Some(journal_bytes.max(1));
        self
    }

    /// Resume the durable history at `path`: load the newest valid
    /// snapshot, rebuild the backend *warm* over its base, replay the
    /// journal tail beyond it through the ordinary batch path, and keep
    /// journaling where the pre-kill session left off.
    ///
    /// Warm means warm: the snapshot's base holds the full pre-kill
    /// contents, so plan lowering orders by exactly the cardinalities the
    /// dead session had learned — no blind build, no first-data replan —
    /// and the persisted strategy tag re-lowers the plan if a pre-kill
    /// adaptive replan had switched it. The rebuilt view is cross-checked
    /// against the snapshot's recorded view before any tail replays.
    /// [`crate::Explain::recovered`] records the snapshot epoch and tail
    /// length.
    ///
    /// `db` is the replay source when no snapshot was ever taken: pass
    /// the database the original session was built over (the common
    /// streaming case passes the same empty database).
    ///
    /// Failures — a corrupt snapshot, a mismatched query, a rebuilt view
    /// that disagrees with the recorded one — surface as
    /// [`EngineError::Store`]; with a registry attached they also bump
    /// `ivm.store.recovery_failures` and write a flight-recorder dump, so
    /// the post-mortem survives the process that could not start. A torn
    /// journal *tail* is not a failure: replay stops at the last valid
    /// record and the note lands in `explain()`.
    pub fn recover(
        mut self,
        path: impl Into<PathBuf>,
        db: &Database<R>,
    ) -> Result<Session<R>, EngineError> {
        let path: PathBuf = path.into();
        let observe = self.observe.clone();
        let fail = |msg: String| {
            if let Some(registry) = &observe {
                record_recovery_failure(registry, &msg);
            }
            EngineError::Store(msg)
        };
        let Recovered {
            store,
            snapshot,
            tail,
            torn,
        } = Store::recover::<R>(&path)
            .map_err(|e| fail(format!("recovering {}: {e}", path.display())))?;
        if let Some(s) = &snapshot {
            if s.query_name != self.query.name.name() {
                return Err(fail(format!(
                    "snapshot at {} was taken for query {:?}, not {:?}",
                    path.display(),
                    s.query_name,
                    self.query.name.name()
                )));
            }
        }
        let snap_epoch = snapshot.as_ref().map_or(0, |s| s.epoch);
        let strategy_tag = snapshot.as_ref().map_or(0, |s| s.strategy_tag);
        let persisted_cards = snapshot
            .as_ref()
            .map(|s| s.cards.clone())
            .unwrap_or_default();
        let persisted_degrees = snapshot
            .as_ref()
            .map(|s| s.degrees.clone())
            .unwrap_or_default();
        let (mut base, recorded_view) = match snapshot {
            Some(s) => (s.base, Some(s.view)),
            None => (mirror_db(&self.query, db), None),
        };
        // Build fresh over the snapshot base — informed lowering, since
        // the base holds the exact pre-kill contents. The builder's own
        // durable arm must not run (it would truncate the history we are
        // recovering); the recovered store is installed below instead.
        self.durable = None;
        let auto_snapshot = self.auto_snapshot.take();
        let lift = self.lift;
        let query = self.query.clone();
        let mut session = self.build(&base)?;
        // Family reconciliation before plan re-lowering: the persisted
        // tag names the engine *family* the dead session was running. A
        // pre-kill cross-family replan can leave the fresh build on the
        // other family; rebuild from the snapshot base so the recovered
        // session re-lowers to exactly the pre-kill family.
        let reconciled = match (strategy_tag == HL_STRATEGY_TAG, &session.backend) {
            (true, Backend::HeavyLight(_)) | (false, Backend::Dataflow(_)) => false,
            (true, _) => {
                session.backend = Backend::HeavyLight(
                    HeavyLightEngine::new(query.clone(), &base, lift).map_err(|e| {
                        fail(format!("re-lowering the persisted heavy-light family: {e}"))
                    })?,
                );
                true
            }
            (false, Backend::HeavyLight(_)) => {
                // Tag 0 (no strategy persisted) defaults to the multiway
                // plan auto-selection lowers for this query class.
                let strategy = match JoinStrategy::from_tag(strategy_tag) {
                    Some(s) if s != JoinStrategy::Auto => s,
                    _ => JoinStrategy::Multiway,
                };
                session.backend = Backend::Dataflow(DataflowEngine::new_with_strategy(
                    query.clone(),
                    &base,
                    lift,
                    strategy,
                )?);
                true
            }
            (false, _) => false,
        };
        if reconciled {
            if let Some(registry) = &observe {
                match &mut session.backend {
                    Backend::Dataflow(e) => e.observe(registry, "ivm.dataflow"),
                    Backend::HeavyLight(e) => e.observe(registry, "ivm.hl"),
                    _ => {}
                }
            }
            let kind = session.backend.kind();
            session.explain.engine = kind;
            session.explain.cost = cost_profile(session.explain.classification.class, kind);
            session.refresh_hl_note();
        }
        // The persisted per-key degree sketch plays the same role for the
        // learned statistics that the recorded view plays for the engine
        // state: rebuilt from the same base, the sketch must agree — and
        // importing it warm means an adaptive recovered session sees the
        // exact skew evidence the dead one had learned, so the tail
        // replay performs zero family re-selection.
        if !persisted_degrees.is_empty() {
            let mut fresh = LearnedCardinalities::new();
            fresh.rebuild_degrees(&base, &query);
            if fresh.export_degrees() != persisted_degrees {
                return Err(fail(
                    "rebuilt per-key degree sketch disagrees with the \
                     snapshot's recorded one"
                        .into(),
                ));
            }
        }
        if let Some(st) = session.adaptive.as_mut() {
            st.learned.refresh(&base, &st.query);
            st.learned.rebuild_degrees(&base, &st.query);
        }
        // A pre-kill adaptive replan may have switched the resolved
        // strategy away from what selection lowers; the persisted tag
        // re-lowers the plan from the persisted cardinalities so the
        // recovered session runs the *pre-kill* plan, not the default.
        if let Some(strategy) = JoinStrategy::from_tag(strategy_tag) {
            if strategy != JoinStrategy::Auto {
                let mut cards = ivm_dataflow::Cardinalities::none();
                for (rel, n) in &persisted_cards {
                    cards.set(*rel, *n as usize);
                }
                match &mut session.backend {
                    Backend::Dataflow(e) if e.resolved_strategy() != strategy => {
                        e.replan_with_cards(&base, strategy, cards)?;
                    }
                    Backend::Sharded(e) if e.resolved_strategy() != strategy => {
                        e.replan_with_cards(&base, strategy, &cards)?;
                    }
                    _ => {}
                }
                let kind = session.backend.kind();
                session.explain.engine = kind;
                session.explain.cost = cost_profile(session.explain.classification.class, kind);
            }
        }
        // Cross-check before any tail replays: rebuilt from the same base,
        // the view must match the snapshot's recorded contents exactly —
        // a disagreement means the snapshot is lying about one of them.
        if let Some(view) = &recorded_view {
            let rebuilt = session.output();
            let agrees =
                rebuilt.len() == view.len() && view.iter().all(|(t, r)| &rebuilt.get(t) == r);
            if !agrees {
                return Err(fail(format!(
                    "rebuilt view disagrees with the snapshot's recorded view \
                     ({} tuples rebuilt vs {} recorded)",
                    rebuilt.len(),
                    view.len()
                )));
            }
        }
        // Replay the tail through the ordinary batch path — recovery is
        // just another update stream. A batch the backend rejected
        // pre-kill fails identically on replay (validation is
        // deterministic) and is skipped, exactly as the live path did.
        let mut replayed_epochs = 0u64;
        let mut replayed_updates = 0u64;
        let mut last_epoch = snap_epoch;
        for (epoch, batch) in &tail {
            last_epoch = (*epoch).max(last_epoch);
            replayed_epochs += 1;
            if session.backend.maintainer().apply_batch(batch).is_ok() {
                session.after_ingest(batch)?;
                base.apply_batch(batch);
                replayed_updates += batch.len() as u64;
            }
        }
        session.drain()?;
        let mut store = store;
        if let Some(registry) = &observe {
            store.observe(registry);
            registry.counter("ivm.store.recoveries").inc();
            registry
                .counter("ivm.store.replayed_epochs")
                .add(replayed_epochs);
            registry
                .counter("ivm.store.replayed_updates")
                .add(replayed_updates);
        }
        session.durable = Some(DurableState {
            store,
            epoch: last_epoch,
            mirror: base,
            append: journal_append::<R>,
            auto_snapshot: auto_snapshot.map(|bytes| (bytes, snapshot_hook::<R> as SnapshotFn<R>)),
        });
        let torn_note = torn
            .map(|t| format!("; journal tail torn ({t})"))
            .unwrap_or_default();
        session.explain.recovered = Some(if recorded_view.is_some() {
            format!(
                "warm restart from snapshot epoch {snap_epoch}; replayed \
                 {replayed_epochs} journaled epochs ({replayed_updates} \
                 updates){torn_note}"
            )
        } else {
            format!(
                "cold recovery (no snapshot on disk); replayed \
                 {replayed_epochs} journaled epochs ({replayed_updates} \
                 updates){torn_note}"
            )
        });
        Ok(session)
    }
}

impl EngineKind {
    /// Whether auto-selection may fall back to dataflow when this kind
    /// fails to build (the generic engines never fail on query shape).
    fn is_specialized(self) -> bool {
        !matches!(
            self,
            EngineKind::DataflowLeftDeep | EngineKind::DataflowMultiway | EngineKind::Sharded
        )
    }
}

/// The bookkeeping behind an armed [`SessionBuilder::adaptive`] request.
///
/// The session owns the ground truth the engine deliberately does not
/// materialize: a mirror of the base relations, applied in lockstep with
/// every accepted batch. Live sizes are snapshotted from the mirror into
/// [`LearnedCardinalities`] (O(#atoms) per batch — relation sizes are
/// O(1) reads), and the mirror doubles as the replay source when a replan
/// fires.
struct AdaptiveState<R: Semiring> {
    policy: ReplanPolicy,
    learned: LearnedCardinalities,
    mirror: Database<R>,
    query: Query,
    /// The builder's payload lifting, kept so a cross-family replan can
    /// rebuild the new backend from the mirror mid-stream.
    lift: Lift<R>,
    /// Whether the query (a triangle-class cycle) *and* the payload (a
    /// ring — the heavy-light views subtract) admit the heavy-light
    /// family; gates [`ReplanPolicy::decide_family`] entirely.
    hl_eligible: bool,
    /// Accepted ingestion calls since the session was built — single
    /// updates count as one-update batches (the index recorded in replan
    /// events).
    batch_index: u64,
    /// Hysteresis clock: ingestion calls since the last replan (or
    /// build). The policy's replay-amortization gate keeps per-update
    /// streams from replaying the base every `min_batches_between` calls.
    batches_since_replan: u64,
    /// Engine counters at the last replan — the policy judges the window
    /// since, not lifetime totals.
    window_base: DataflowStats,
    /// When the current window opened (build or last replan) — the
    /// denominator of the window's ingestion throughput, which replan
    /// events record as their before/after evidence.
    window_started: Instant,
    /// Updates ingested in the current window (the numerator).
    window_updates: u64,
}

/// The persistence bookkeeping behind [`SessionBuilder::durable`] /
/// [`SessionBuilder::recover`].
///
/// The session owns the store; every acknowledged ingestion call advances
/// `epoch` and journals write-ahead through `append`. The mirror tracks
/// the base relations the backend accepted — it becomes the snapshot's
/// base (kept separately from the adaptive mirror, which only exists when
/// a policy is armed).
struct DurableState<R: Semiring> {
    store: Store,
    /// The last journaled epoch — one per acknowledged ingestion call,
    /// advancing even for batches the backend then rejects (replay hits
    /// the same deterministic rejection and skips them).
    epoch: u64,
    /// The base relations as of the last *accepted* batch — the snapshot's
    /// replay source.
    mirror: Database<R>,
    append: JournalAppend<R>,
    /// `(journal-bytes threshold, monomorphized snapshot hook)` — when
    /// the journal grows past the threshold, the next acknowledged
    /// ingestion call consolidates it via [`Session::snapshot`]
    /// automatically. `None` leaves snapshotting fully manual.
    auto_snapshot: Option<(u64, SnapshotFn<R>)>,
}

/// The session-level metric handles behind [`SessionBuilder::observe`]:
/// engine-agnostic ingestion series every backend gets, plus the registry
/// itself for [`Session::metrics`] snapshots.
struct SessionObs {
    registry: MetricsRegistry,
    /// The registry's trace ring: every ingestion call opens a
    /// `session.ingest` root span here (epoch = the batch ordinal), and
    /// downstream stages — router, shard workers, per-operator engine
    /// time — attach child spans under it, so
    /// [`ivm_obs::EpochWaterfall`] can reconstruct the epoch's latency
    /// breakdown.
    tracer: Tracer,
    root_label: LabelId,
    /// Wall-clock latency of each ingestion call (backend apply/enqueue
    /// plus adaptive bookkeeping), under `ivm.session.ingest_ns`.
    ingest_ns: Histogram,
    batches: Counter,
    updates: Counter,
    replans: Counter,
}

/// Mirror every distinct atom relation of `query` out of `db` (statics
/// included — a replan replays them too), creating missing ones empty.
fn mirror_db<R: Semiring>(query: &Query, db: &Database<R>) -> Database<R> {
    let mut mirror = Database::new();
    let mut seen: FxHashSet<Sym> = FxHashSet::default();
    for atom in &query.atoms {
        if seen.insert(atom.name) {
            match db.get(atom.name) {
                Some(rel) => mirror.add(atom.name, rel.clone()),
                None => mirror.create(atom.name, atom.schema.clone()),
            }
        }
    }
    mirror
}

/// The engine a session stood up, behind one set of method surfaces.
enum Backend<R: Semiring> {
    EagerFact(EagerFactEngine<R>),
    EagerList(EagerListEngine<R>),
    LazyFact(LazyFactEngine<R>),
    LazyList(LazyListEngine<R>),
    Cqap(CqapEngine<R>),
    Dataflow(DataflowEngine<R>),
    HeavyLight(HeavyLightEngine<R>),
    Sharded(ShardedEngine<R>),
}

impl<R: Semiring> Backend<R> {
    fn kind(&self) -> EngineKind {
        match self {
            Backend::EagerFact(_) => EngineKind::EagerFact,
            Backend::EagerList(_) => EngineKind::EagerList,
            Backend::LazyFact(_) => EngineKind::LazyFact,
            Backend::LazyList(_) => EngineKind::LazyList,
            Backend::Cqap(_) => EngineKind::Cqap,
            // `resolved_strategy` is what the planner actually lowered —
            // `Auto` (the fallback path) resolves through the planner's
            // own split, so the report can never drift from the plan.
            Backend::Dataflow(e) => match e.resolved_strategy() {
                JoinStrategy::Multiway => EngineKind::DataflowMultiway,
                _ => EngineKind::DataflowLeftDeep,
            },
            Backend::HeavyLight(_) => EngineKind::HeavyLight,
            Backend::Sharded(_) => EngineKind::Sharded,
        }
    }

    fn maintainer(&mut self) -> &mut dyn Maintainer<R> {
        match self {
            Backend::EagerFact(e) => e,
            Backend::EagerList(e) => e,
            Backend::LazyFact(e) => e,
            Backend::LazyList(e) => e,
            Backend::Cqap(e) => e,
            Backend::Dataflow(e) => e,
            Backend::HeavyLight(e) => e,
            Backend::Sharded(e) => e,
        }
    }

    fn maintainer_ref(&self) -> &dyn Maintainer<R> {
        match self {
            Backend::EagerFact(e) => e,
            Backend::EagerList(e) => e,
            Backend::LazyFact(e) => e,
            Backend::LazyList(e) => e,
            Backend::Cqap(e) => e,
            Backend::Dataflow(e) => e,
            Backend::HeavyLight(e) => e,
            Backend::Sharded(e) => e,
        }
    }
}

/// One uniform handle over every maintenance engine in the workspace.
///
/// A `Session` *is* a [`Maintainer`]: ingestion goes through the one
/// batch-first trait surface ([`Maintainer::apply_batch`]), whatever
/// engine the dichotomy selected. On top of the trait the session adds
/// the capabilities that are engine-specific but deserve a uniform
/// spelling: pipelined ingestion ([`Session::enqueue_batch`] /
/// [`Session::drain`], native on sharded fleets, synchronous elsewhere),
/// CQAP access requests ([`Session::access`] / [`Session::probe`]), and
/// the [`Session::explain`] report.
pub struct Session<R: Semiring> {
    backend: Backend<R>,
    explain: Explain,
    adaptive: Option<AdaptiveState<R>>,
    obs: Option<SessionObs>,
    /// The live scrape endpoint from [`SessionBuilder::serve_metrics`];
    /// holding it here ties the server's lifetime to the session's.
    metrics_server: Option<MetricsServer>,
    /// Multiway store slots that adopted an existing [`StoreHub`] store
    /// at build time (0 without [`SessionBuilder::shared_stores`]).
    shared_store_hits: usize,
    /// The durable store behind [`SessionBuilder::durable`] /
    /// [`SessionBuilder::recover`]; `None` for in-memory sessions.
    durable: Option<DurableState<R>>,
}

impl<R: Semiring> Session<R> {
    /// Start building a session for `query`.
    ///
    /// ```
    /// use ivm_core::Maintainer;
    /// use ivm_session::Session;
    ///
    /// let q = ivm_query::examples::fig3_query();
    /// let db = ivm_data::Database::new();
    /// let mut s = Session::<i64>::builder(q).build(&db).unwrap();
    /// assert_eq!(s.explain().engine, ivm_session::EngineKind::EagerFact);
    /// s.apply_batch(&[]).unwrap();
    /// ```
    pub fn builder(query: Query) -> SessionBuilder<R> {
        SessionBuilder::new(query)
    }

    /// The selection report: class, engine, reason, predicted costs.
    pub fn explain(&self) -> &Explain {
        &self.explain
    }

    /// The engine kind actually running.
    pub fn engine_kind(&self) -> EngineKind {
        self.explain.engine
    }

    /// One line naming the engine; for dataflow-backed sessions the
    /// lowered operator plan, for fleets the shard routing plan.
    pub fn describe(&self) -> String {
        match &self.backend {
            Backend::Dataflow(e) => e.plan(),
            Backend::HeavyLight(e) => e.plan(),
            Backend::Sharded(e) => e.describe(),
            _ => self.explain.engine.to_string(),
        }
    }

    /// Enqueue a batch without waiting for it to be processed.
    ///
    /// On a sharded fleet this is native pipelined ingestion: the call
    /// returns once every sub-batch is accepted by a shard queue
    /// (blocking only for backpressure), and the maintained view reflects
    /// the batch after the next [`Session::drain`] (or enumeration, which
    /// drains implicitly). Every other engine applies the batch
    /// synchronously and discards the delta, so the calling code stays
    /// engine-agnostic.
    pub fn enqueue_batch(&mut self, batch: &[Update<R>]) -> Result<(), EngineError> {
        let started = self.obs_begin();
        self.journal_ingest(batch)?;
        match &mut self.backend {
            Backend::Sharded(e) => e.enqueue_batch(batch).map(|_| ())?,
            other => other.maintainer().apply_batch(batch).map(|_| ())?,
        }
        self.durable_accepted(batch);
        self.after_ingest(batch)?;
        self.refresh_hl_note();
        self.obs_ingest(batch.len(), started);
        self.maybe_auto_snapshot()?;
        Ok(())
    }

    /// Settle all enqueued batches into the maintained view. A no-op for
    /// engines without a pipelined path.
    pub fn drain(&mut self) -> Result<(), EngineError> {
        match &mut self.backend {
            Backend::Sharded(e) => e.drain(),
            _ => Ok(()),
        }
    }

    /// Answer a CQAP access request: bind the query's input variables to
    /// `input` and enumerate `(output tuple, payload)` with constant
    /// delay. Errors unless the session is CQAP-backed.
    pub fn access(&self, input: &Tuple, f: &mut dyn FnMut(&Tuple, &R)) -> Result<(), EngineError> {
        match &self.backend {
            Backend::Cqap(e) => {
                e.access(input, f);
                Ok(())
            }
            _ => Err(EngineError::NotSupported(format!(
                "access requests need a CQAP-backed session; this session \
                 runs {}",
                self.explain.engine
            ))),
        }
    }

    /// Scalar access answer (detection-style probes). Errors unless the
    /// session is CQAP-backed.
    pub fn probe(&self, input: &Tuple) -> Result<R, EngineError> {
        let mut acc = R::zero();
        self.access(input, &mut |_, r| acc.add_assign(r))?;
        Ok(acc)
    }

    /// Dataflow propagation counters, for dataflow- and shard-backed
    /// sessions (merged across shards for fleets).
    pub fn stats(&self) -> Option<DataflowStats> {
        match &self.backend {
            Backend::Dataflow(e) => Some(e.stats()),
            Backend::Sharded(e) => Some(e.stats()),
            _ => None,
        }
    }

    /// Tuples resident in this session's *privately owned* engine state
    /// (join indexes, multiway trie stores, the materialized view) — the
    /// per-session memory a serving layer amortizes away. Stores adopted
    /// from a [`StoreHub`] via [`SessionBuilder::shared_stores`] are
    /// excluded: they are counted once at the hub, not once per member.
    /// `None` for backends that do not expose a state census.
    pub fn resident_tuples(&self) -> Option<usize> {
        match &self.backend {
            Backend::Dataflow(e) => Some(e.resident_tuples()),
            Backend::HeavyLight(e) => Some(e.resident_tuples()),
            _ => None,
        }
    }

    /// How many multiway store slots adopted a store another
    /// [`StoreHub`] member had already donated when this session was
    /// built — the storage-dedup wins of
    /// [`SessionBuilder::shared_stores`]. Zero without a hub (or when
    /// this session was the first to donate every store it probes).
    pub fn shared_store_hits(&self) -> usize {
        self.shared_store_hits
    }

    /// Per-shard statistics, for shard-backed sessions.
    pub fn sharded_stats(&self) -> Option<ShardedStats> {
        match &self.backend {
            Backend::Sharded(e) => Some(e.sharded_stats()),
            _ => None,
        }
    }

    /// A point-in-time snapshot of every metric the session publishes —
    /// session-level ingestion series plus whatever the backend exposes
    /// (per-operator timings for dataflow, per-shard queues/latencies for
    /// fleets). Empty unless the session was built with
    /// [`SessionBuilder::observe`]. Render it with
    /// [`MetricsSnapshot::to_prometheus`] or
    /// [`MetricsSnapshot::render_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.obs {
            Some(o) => o.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// The bound address of the live scrape endpoint, if
    /// [`SessionBuilder::serve_metrics`] started one — the address to
    /// `curl` when the builder asked for port 0.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(|s| s.addr())
    }

    /// The per-epoch latency waterfalls reconstructible from the trace
    /// ring right now, oldest first — one per recent epoch whose
    /// `session.ingest` root span is still resident. Empty unless the
    /// session was built with [`SessionBuilder::observe`].
    pub fn waterfalls(&self) -> Vec<ivm_obs::EpochWaterfall> {
        match &self.obs {
            Some(o) => ivm_obs::EpochWaterfall::from_events(&o.tracer.events()),
            None => Vec::new(),
        }
    }

    /// Open one observed ingestion call: a `session.ingest` root span at
    /// the current epoch (the batch ordinal — `batches` pre-increment),
    /// installed as the ambient trace context so every downstream stage
    /// the backend call reaches attaches under it. `Some` exactly when a
    /// registry is attached, so detached sessions never read the clock.
    fn obs_begin(&self) -> Option<(Span, Instant)> {
        self.obs.as_ref().map(|o| {
            (
                o.tracer.enter(o.root_label, o.batches.get()),
                Instant::now(),
            )
        })
    }

    /// Close out one observed ingestion call: latency into the histogram
    /// and — with exactly the same elapsed value, so waterfall totals and
    /// `ingest_ns` observations agree to the nanosecond — onto the root
    /// span; call/tuple counts onto the counters.
    fn obs_ingest(&self, updates: usize, started: Option<(Span, Instant)>) {
        if let (Some(o), Some((span, t0))) = (&self.obs, started) {
            let elapsed = t0.elapsed();
            o.ingest_ns.record_duration(elapsed);
            span.finish_with(elapsed);
            o.batches.inc();
            o.updates.add(updates as u64);
        }
    }

    /// Write-ahead journaling for one ingestion call: append the batch
    /// under a fresh epoch and fsync it *before* the backend sees it, so
    /// an acknowledged epoch can never be lost to a crash mid-apply. The
    /// epoch advances even when the backend later rejects the batch —
    /// replay hits the same deterministic rejection and skips it, keeping
    /// epoch numbering identical across lives. A no-op for in-memory
    /// sessions.
    fn journal_ingest(&mut self, batch: &[Update<R>]) -> Result<(), EngineError> {
        let Some(d) = self.durable.as_mut() else {
            return Ok(());
        };
        d.epoch += 1;
        (d.append)(&mut d.store, d.epoch, batch);
        d.store
            .commit()
            .map_err(|e| EngineError::Store(e.to_string()))
    }

    /// Durable mirror bookkeeping after a batch the backend accepted.
    fn durable_accepted(&mut self, batch: &[Update<R>]) {
        if let Some(d) = self.durable.as_mut() {
            d.mirror.apply_batch(batch);
        }
    }

    /// Keep [`Explain::heavy_light`] describing the live partition — the
    /// ε threshold and heavy/light part sizes move with the data, so the
    /// note is refreshed after every ingestion call (and cleared when a
    /// family shift leaves the heavy-light engine).
    fn refresh_hl_note(&mut self) {
        self.explain.heavy_light = hl_note(&self.backend);
    }

    /// Consolidate the journal when it has outgrown the
    /// [`SessionBuilder::auto_snapshot`] threshold. Runs after the batch
    /// is acknowledged, so the snapshot always covers it; a no-op for
    /// in-memory sessions and below the threshold.
    fn maybe_auto_snapshot(&mut self) -> Result<(), EngineError> {
        let Some(d) = self.durable.as_ref() else {
            return Ok(());
        };
        let Some((threshold, snap)) = d.auto_snapshot else {
            return Ok(());
        };
        if d.store.journal_bytes() >= threshold {
            snap(self)?;
        }
        Ok(())
    }

    /// Adaptive bookkeeping after a batch the backend *accepted*: apply
    /// it to the mirror, refresh the learned cardinalities, and consult
    /// the policy — re-lowering the plan (and recording the event in
    /// `explain()`) when it fires. A no-op without an armed policy.
    fn after_ingest(&mut self, batch: &[Update<R>]) -> Result<(), EngineError> {
        let Some(st) = self.adaptive.as_mut() else {
            return Ok(());
        };
        // The backend validated the batch before applying it, so every
        // update targets a known dynamic relation the mirror holds.
        st.mirror.apply_batch(batch);
        st.learned.refresh(&st.mirror, &st.query);
        if st.hl_eligible {
            // Per-key degrees feed the family comparison only; skip the
            // sketch upkeep entirely when no family shift can ever fire.
            st.learned.observe_batch(&st.mirror, &st.query, batch);
        }
        st.batch_index += 1;
        st.batches_since_replan += 1;
        st.window_updates += batch.len() as u64;
        // The throughput of the window running *now* — evidence for the
        // replan events on both sides of it: it closes the last event's
        // `after_tps` (refreshed on every ingest, so the recorded value
        // always covers the whole post-replan window so far) and, if a
        // replan fires below, it becomes the new event's `before_tps`.
        // Clamp the denominator: on a coarse-granularity clock the window
        // can read as zero elapsed time even though updates flowed, and a
        // replan event recording `before_tps: 0.0` for a window that did
        // work is indistinguishable from a dead stream.
        let window_tps = {
            let secs = st.window_started.elapsed().as_secs_f64().max(1e-9);
            st.window_updates as f64 / secs
        };
        if let Some(last) = self.explain.replans.last_mut() {
            last.after_tps = Some(window_tps);
        }

        // Cross-family re-selection first: when the learned degree skew
        // says the *family* is wrong, re-deriving atom orders inside the
        // current family cannot help. The single-threaded dataflow and
        // heavy-light backends can swap (a fleet cannot — workers own
        // their engines, and the heavy-light engine is single-threaded).
        let current_family = match &self.backend {
            Backend::Dataflow(_) => Some(EngineFamily::Dataflow),
            Backend::HeavyLight(_) => Some(EngineFamily::HeavyLight),
            _ => None,
        };
        if let Some(current) = current_family {
            if let Some(decision) = st.policy.decide_family(
                current,
                st.hl_eligible,
                &st.learned,
                st.window_updates,
                st.batches_since_replan,
            ) {
                let FamilyDecision { to, cards, reason } = decision;
                let from = plan_label(&self.backend);
                // Rebuild the new family's backend from the mirror — the
                // ground truth of everything the old backend accepted —
                // so the swap is a replay, not a guess. Lowering (and the
                // heavy-light partition threshold) comes out informed:
                // the mirror holds the live sizes the stats learned.
                self.backend = match to {
                    EngineFamily::HeavyLight => {
                        Backend::HeavyLight(HeavyLightEngine::new_with_eps(
                            st.query.clone(),
                            &st.mirror,
                            st.lift,
                            st.policy.eps,
                        )?)
                    }
                    EngineFamily::Dataflow => Backend::Dataflow(DataflowEngine::new_with_cards(
                        st.query.clone(),
                        &st.mirror,
                        st.lift,
                        JoinStrategy::Multiway,
                        cards,
                    )?),
                };
                if let Some(o) = &self.obs {
                    // Re-attach the fresh backend under the same prefixes;
                    // both engines backfill from the registry so counters
                    // stay cumulative across the family swap.
                    match &mut self.backend {
                        Backend::Dataflow(e) => e.observe(&o.registry, "ivm.dataflow"),
                        Backend::HeavyLight(e) => e.observe(&o.registry, "ivm.hl"),
                        _ => {}
                    }
                    o.replans.inc();
                }
                let kind = self.backend.kind();
                self.explain.replans.push(ReplanEvent {
                    batch_index: st.batch_index,
                    from,
                    to: plan_label(&self.backend),
                    trigger: ReplanTrigger::FamilyShift,
                    reason,
                    before_tps: window_tps,
                    after_tps: None,
                });
                self.explain.engine = kind;
                self.explain.cost = cost_profile(self.explain.classification.class, kind);
                self.explain.heavy_light = hl_note(&self.backend);
                st.batches_since_replan = 0;
                st.window_base = match &self.backend {
                    Backend::Dataflow(e) => e.stats(),
                    _ => DataflowStats::default(),
                };
                st.window_started = Instant::now();
                st.window_updates = 0;
                return Ok(());
            }
        }

        let (resolved, lowered, stats) = match &self.backend {
            Backend::Dataflow(e) => (e.resolved_strategy(), e.lowered_cards().clone(), e.stats()),
            Backend::Sharded(e) => (e.resolved_strategy(), e.lowered_cards().clone(), e.stats()),
            // Adaptive state is only armed for the two backends above.
            _ => return Ok(()),
        };
        let window = stats.since(&st.window_base);
        let Some(decision) = st.policy.decide(
            &st.query,
            resolved,
            &lowered,
            &st.learned,
            &window,
            st.batches_since_replan,
        ) else {
            return Ok(());
        };
        let ReplanDecision {
            strategy,
            cards,
            trigger,
            reason,
        } = decision;

        let from = plan_label(&self.backend);
        match &mut self.backend {
            Backend::Dataflow(e) => e.replan_with_cards(&st.mirror, strategy, cards)?,
            Backend::Sharded(e) => e.replan_with_cards(&st.mirror, strategy, &cards)?,
            _ => unreachable!("adaptive state armed for a specialized engine"),
        }
        let kind = self.backend.kind();
        self.explain.replans.push(ReplanEvent {
            batch_index: st.batch_index,
            from,
            to: plan_label(&self.backend),
            trigger,
            reason,
            before_tps: window_tps,
            after_tps: None,
        });
        if let Some(o) = &self.obs {
            o.replans.inc();
        }
        // Keep the report describing the plan actually running.
        self.explain.engine = kind;
        self.explain.cost = cost_profile(self.explain.classification.class, kind);
        st.batches_since_replan = 0;
        st.window_base = match &self.backend {
            Backend::Dataflow(e) => e.stats(),
            Backend::Sharded(e) => e.stats(),
            _ => DataflowStats::default(),
        };
        st.window_started = Instant::now();
        st.window_updates = 0;
        Ok(())
    }
}

impl<R: Semiring + Persist> Session<R> {
    /// Consolidate the session's durable history: drain pending work,
    /// write one atomic snapshot (base relations, maintained view,
    /// learned cardinalities, resolved strategy), and truncate the
    /// journal behind it — after this call, recovery time is bounded by
    /// the tail ingested *since*, not by total history. Returns the
    /// consolidated epoch. Errors unless the session is durable.
    pub fn snapshot(&mut self) -> Result<u64, EngineError> {
        if self.durable.is_none() {
            return Err(EngineError::NotSupported(
                "snapshot() needs a durable session; build with \
                 .durable(path) or .recover(path, db)"
                    .into(),
            ));
        }
        self.drain()?;
        let strategy_tag = match &self.backend {
            Backend::Dataflow(e) => e.resolved_strategy().tag(),
            Backend::Sharded(e) => e.resolved_strategy().tag(),
            Backend::HeavyLight(_) => HL_STRATEGY_TAG,
            _ => 0,
        };
        let query = self.backend.maintainer_ref().query().clone();
        let query_name = query.name.name();
        let view = self.output();
        let d = self.durable.as_mut().expect("checked above");
        let mut cards: Vec<(Sym, u64)> =
            d.mirror.iter().map(|(s, r)| (*s, r.len() as u64)).collect();
        cards.sort_by_key(|(s, _)| s.name());
        // Persist the per-key degree sketches alongside the sizes —
        // recovery imports them so a recovered adaptive session sees the
        // same skew evidence the dead one had learned, and performs zero
        // family re-selection. Recomputed fresh from the durable mirror
        // (one scan) so the snapshot never depends on whether a policy
        // was armed.
        let degrees = {
            let mut fresh = LearnedCardinalities::new();
            fresh.rebuild_degrees(&d.mirror, &query);
            fresh.export_degrees()
        };
        let doc = SnapshotDoc {
            epoch: d.epoch,
            query_name,
            strategy_tag,
            cards,
            degrees,
            base: d.mirror.clone(),
            view,
        };
        d.store
            .snapshot(&doc)
            .map_err(|e| EngineError::Store(e.to_string()))?;
        Ok(doc.epoch)
    }

    /// The last journaled epoch (one per acknowledged ingestion call);
    /// `None` for in-memory sessions.
    pub fn journal_epoch(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.epoch)
    }

    /// Durable journal size in bytes; `None` for in-memory sessions.
    pub fn journal_bytes(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.store.journal_bytes())
    }
}

/// A short human-readable label of the plan a backend runs, for replan
/// events (the engine kind, plus the per-shard strategy for fleets).
fn plan_label<R: Semiring>(backend: &Backend<R>) -> String {
    match backend {
        Backend::Sharded(e) => format!(
            "sharded fleet x{} ({:?} per shard)",
            e.shards(),
            e.resolved_strategy()
        ),
        Backend::HeavyLight(e) => e.plan(),
        other => other.kind().to_string(),
    }
}

/// The `sublinear:` line of `explain()` — the ε/θ partition parameters
/// and the amortized bound they buy, plus the live view-space cost. The
/// engine line already carries the per-relation part sizes via
/// [`HeavyLightEngine::plan`]; this row states what they *mean*.
fn hl_note<R: Semiring>(backend: &Backend<R>) -> Option<String> {
    match backend {
        Backend::HeavyLight(e) => {
            let eps = e.eps();
            Some(format!(
                "ε={eps}, θ={}, O(N^{}) amortized updates, {} view entries",
                e.threshold(),
                eps.max(1.0 - eps),
                e.view_entries(),
            ))
        }
        _ => None,
    }
}

impl<R: Semiring> Maintainer<R> for Session<R> {
    fn query(&self) -> &Query {
        self.backend.maintainer_ref().query()
    }

    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        let started = self.obs_begin();
        self.journal_ingest(std::slice::from_ref(upd))?;
        self.backend.maintainer().apply(upd)?;
        self.durable_accepted(std::slice::from_ref(upd));
        self.after_ingest(std::slice::from_ref(upd))?;
        self.refresh_hl_note();
        self.obs_ingest(1, started);
        self.maybe_auto_snapshot()?;
        Ok(())
    }

    /// Delegates to the backend's native batch path — the session never
    /// re-implements ingestion, it only routes to the one trait surface
    /// (plus the adaptive bookkeeping when a policy is armed).
    fn apply_batch(&mut self, batch: &[Update<R>]) -> Result<Relation<R>, EngineError> {
        let started = self.obs_begin();
        self.journal_ingest(batch)?;
        let delta = self.backend.maintainer().apply_batch(batch)?;
        self.durable_accepted(batch);
        self.after_ingest(batch)?;
        self.refresh_hl_note();
        self.obs_ingest(batch.len(), started);
        self.maybe_auto_snapshot()?;
        Ok(delta)
    }

    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R)) {
        self.backend.maintainer().for_each_output(f)
    }
}

impl<R: Semiring> std::fmt::Debug for Session<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("engine", &self.explain.engine)
            .field("class", &self.explain.classification.class)
            .field("shards", &self.explain.shards)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::{sym, tup};
    use ivm_query::examples;

    #[test]
    fn fig3_auto_selects_eager_fact_and_maintains() {
        let q = examples::fig3_query();
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        let mut s = Session::<i64>::builder(q).build(&Database::new()).unwrap();
        assert_eq!(s.engine_kind(), EngineKind::EagerFact);
        assert!(s.explain().fallback.is_none());
        s.apply_batch(&[
            Update::insert(rn, tup![1i64, 10i64]),
            Update::insert(sn, tup![1i64, 20i64]),
        ])
        .unwrap();
        assert_eq!(s.output().get(&tup![1i64, 10i64, 20i64]), 1);
    }

    #[test]
    fn triangle_auto_selects_heavy_light() {
        let q = examples::triangle_count();
        let s = Session::<i64>::builder(q).build(&Database::new()).unwrap();
        assert_eq!(s.engine_kind(), EngineKind::HeavyLight);
        assert!(s.describe().contains("HeavyLight"), "{}", s.describe());
        // The live partition report is in explain() from the start.
        let rendered = s.explain().to_string();
        assert!(rendered.contains("sublinear:"), "{rendered}");
        assert!(rendered.contains("\u{3b5}="), "{rendered}");
    }

    /// A self-join triangle shares one relation across atoms, which the
    /// heavy-light rotation refuses — the cyclic class still lands on
    /// the worst-case-optimal multiway plan.
    #[test]
    fn self_join_triangle_still_selects_multiway() {
        let [a, b, c] = ivm_data::vars(["sjt_A", "sjt_B", "sjt_C"]);
        let e = sym("sjt_E");
        let q = Query::new(
            "sjt_tri",
            [],
            vec![
                ivm_query::Atom::new(e, [a, b]),
                ivm_query::Atom::new(e, [b, c]),
                ivm_query::Atom::new(e, [c, a]),
            ],
        );
        let s = Session::<i64>::builder(q).build(&Database::new()).unwrap();
        assert_eq!(s.engine_kind(), EngineKind::DataflowMultiway);
    }

    /// A payload without additive inverses (a semiring, not a ring)
    /// cannot run the heavy-light views; auto-selection falls back to
    /// the generic dataflow engine and says so.
    #[test]
    fn inverse_free_payload_falls_back_to_dataflow() {
        use ivm_ring::BoolSemiring;
        let q = examples::triangle_count();
        let s = Session::<BoolSemiring>::builder(q)
            .build(&Database::new())
            .unwrap();
        assert_eq!(s.engine_kind(), EngineKind::DataflowMultiway);
        let fb = s.explain().fallback.as_deref().unwrap();
        assert!(fb.contains("ring"), "{fb}");
    }

    #[test]
    fn shards_request_builds_a_fleet() {
        let q = examples::fig3_query();
        let s = Session::<i64>::builder(q)
            .shards(3)
            .build(&Database::new())
            .unwrap();
        assert_eq!(s.engine_kind(), EngineKind::Sharded);
        assert_eq!(s.explain().shards, 3);
    }

    #[test]
    fn cqap_session_serves_access_requests() {
        let q = examples::triangle_detect_cqap();
        let e = sym("tdc_E");
        let mut s = Session::<i64>::builder(q).build(&Database::new()).unwrap();
        assert_eq!(s.engine_kind(), EngineKind::Cqap);
        s.apply_batch(&[
            Update::insert(e, tup![1i64, 2i64]),
            Update::insert(e, tup![2i64, 3i64]),
            Update::insert(e, tup![3i64, 1i64]),
        ])
        .unwrap();
        assert_eq!(s.probe(&tup![1i64, 2i64, 3i64]).unwrap(), 1);
        assert_eq!(s.probe(&tup![1i64, 3i64, 2i64]).unwrap(), 0);
    }

    #[test]
    fn cqap_session_preprocesses_initial_database() {
        let q = examples::lookup_cqap();
        let (sn, tn) = (sym("lk_S"), sym("lk_T"));
        let mut db: Database<i64> = Database::new();
        db.create(sn, q.atoms[0].schema.clone());
        db.create(tn, q.atoms[1].schema.clone());
        db.apply(&Update::insert(sn, tup![10i64, 1i64]));
        db.apply(&Update::insert(tn, tup![1i64]));
        let s = Session::<i64>::builder(q).build(&db).unwrap();
        assert_eq!(s.probe(&tup![1i64]).unwrap(), 1);
    }

    #[test]
    fn access_on_non_cqap_session_errors() {
        let q = examples::fig3_query();
        let s = Session::<i64>::builder(q).build(&Database::new()).unwrap();
        assert!(matches!(
            s.probe(&tup![1i64]).unwrap_err(),
            EngineError::NotSupported(_)
        ));
    }

    #[test]
    fn forcing_a_mismatched_engine_surfaces_the_dichotomy_error() {
        // ex51 is not q-hierarchical: forcing eager-fact must fail the
        // same way constructing the engine directly would.
        let q = examples::ex51_query();
        let err = Session::<i64>::builder(q)
            .engine(EngineKind::EagerFact)
            .build(&Database::new())
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::NotSupported(_) | EngineError::VarOrder(_)
        ));
    }

    #[test]
    fn conflicting_shards_and_forced_engine_is_refused() {
        let err = Session::<i64>::builder(examples::fig3_query())
            .shards(8)
            .engine(EngineKind::DataflowMultiway)
            .build(&Database::new())
            .unwrap_err();
        assert!(
            matches!(&err, EngineError::NotSupported(m) if m.contains("conflicting")),
            "{err}"
        );
        // Sharded + shards composes fine.
        let s = Session::<i64>::builder(examples::fig3_query())
            .shards(3)
            .engine(EngineKind::Sharded)
            .build(&Database::new())
            .unwrap();
        assert_eq!(s.explain().shards, 3);
    }

    #[test]
    fn shared_stores_refuses_adaptive_and_sharded_builds() {
        // A hub member's stores advance once per epoch, driven by the
        // coordinator. Replanning mid-stream or hiding the engine on
        // worker threads would break that protocol silently — all three
        // combinations must refuse up front.
        let hub = StoreHub::new();
        let q = examples::triangle_count();
        let err = Session::<i64>::builder(q.clone())
            .shared_stores(&hub)
            .adaptive(ReplanPolicy::default())
            .build(&Database::new())
            .unwrap_err();
        assert!(
            matches!(&err, EngineError::NotSupported(m) if m.contains("conflicting")),
            "{err}"
        );
        let err = Session::<i64>::builder(q.clone())
            .shared_stores(&hub)
            .shards(2)
            .build(&Database::new())
            .unwrap_err();
        assert!(
            matches!(&err, EngineError::NotSupported(m) if m.contains("conflicting")),
            "{err}"
        );
        let err = Session::<i64>::builder(q)
            .shared_stores(&hub)
            .engine(EngineKind::Sharded)
            .build(&Database::new())
            .unwrap_err();
        assert!(
            matches!(&err, EngineError::NotSupported(m) if m.contains("conflicting")),
            "{err}"
        );
        // Refusal happens before anything joined the hub.
        assert!(hub.relations().is_empty());
    }

    #[test]
    fn shared_stores_hit_accounting_and_static_atom_gate() {
        let hub = StoreHub::new();
        let [a, b, c] = ivm_data::vars(["ssh_A", "ssh_B", "ssh_C"]);
        let e = sym("ssh_E");
        let tri = |name: &str| {
            Query::new(
                name,
                [],
                vec![
                    ivm_query::Atom::new(e, [a, b]),
                    ivm_query::Atom::new(e, [b, c]),
                    ivm_query::Atom::new(e, [c, a]),
                ],
            )
        };
        let db = Database::new();
        // First member donates its store: no hit.
        let first = Session::<i64>::builder(tri("ssh_t1"))
            .shared_stores(&hub)
            .build(&db)
            .unwrap();
        assert_eq!(first.shared_store_hits(), 0);
        assert_eq!(hub.relations(), vec![e]);
        // Second member adopts it: one hit for the one shared relation.
        let second = Session::<i64>::builder(tri("ssh_t2"))
            .shared_stores(&hub)
            .build(&db)
            .unwrap();
        assert_eq!(second.shared_store_hits(), 1);
        // A query with a static atom must never alias a store that other
        // members' updates advance — sharing is gated off entirely.
        let q_static = Query::new(
            "ssh_static",
            [],
            vec![
                ivm_query::Atom::new(e, [a, b]),
                ivm_query::Atom::new(e, [b, c]),
                ivm_query::Atom::new_static(sym("ssh_F"), [c, a]),
            ],
        );
        let gated = Session::<i64>::builder(q_static)
            .shared_stores(&hub)
            .build(&db)
            .unwrap();
        assert_eq!(gated.shared_store_hits(), 0);
        assert!(
            !hub.relations().contains(&sym("ssh_F")),
            "static relations stay out of the hub"
        );
        // Without a hub the counter is inert.
        let plain = Session::<i64>::builder(tri("ssh_t3")).build(&db).unwrap();
        assert_eq!(plain.shared_store_hits(), 0);
    }

    /// Q(a,d) = R(a,b)·S(b,c)·T(c,d): acyclic but not hierarchical, so
    /// auto-selection lands on the (order-sensitive) left-deep dataflow.
    fn chain3() -> Query {
        let [a, b, c, d] = ivm_data::vars(["sch_A", "sch_B", "sch_C", "sch_D"]);
        Query::new(
            "sch_chain",
            [a, d],
            vec![
                ivm_query::Atom::new(sym("sch_R"), [a, b]),
                ivm_query::Atom::new(sym("sch_S"), [b, c]),
                ivm_query::Atom::new(sym("sch_T"), [c, d]),
            ],
        )
    }

    /// The empty-database-build bug, fixed by the adaptive trigger: a
    /// session built before any data arrives cost-orders its joins from
    /// all-zero counts; with a policy armed it must re-derive the plan on
    /// the first non-empty batch and converge to exactly the plan a
    /// populated build would have produced.
    #[test]
    fn adaptive_empty_build_converges_to_populated_build_plan() {
        let q = chain3();
        let (rn, sn, tn) = (sym("sch_R"), sym("sch_S"), sym("sch_T"));
        let mut s = Session::<i64>::builder(q.clone())
            .adaptive(ReplanPolicy::default())
            .build(&Database::new())
            .unwrap();
        assert_eq!(s.engine_kind(), EngineKind::DataflowLeftDeep);
        assert!(s.explain().adaptive.as_deref().unwrap().contains("armed"));
        let blind_plan = s.describe();

        // Skewed first batch: T is tiny, R is big — the informed atom
        // order must open with T, not with the syntactic tie-break.
        let mut batch: Vec<Update<i64>> = Vec::new();
        let mut db: Database<i64> = Database::new();
        for atom in &q.atoms {
            db.create(atom.name, atom.schema.clone());
        }
        for i in 0..40i64 {
            batch.push(Update::insert(rn, tup![i, i + 1]));
        }
        for i in 0..10i64 {
            batch.push(Update::insert(sn, tup![i + 1, i + 2]));
        }
        batch.push(Update::insert(tn, tup![2i64, 3i64]));
        s.apply_batch(&batch).unwrap();
        db.apply_batch(&batch);

        assert_eq!(s.explain().replans.len(), 1, "{}", s.explain());
        assert_eq!(s.explain().replans[0].batch_index, 1);
        assert_ne!(s.describe(), blind_plan);
        let populated = Session::<i64>::builder(q).build(&db).unwrap();
        assert_eq!(
            s.describe(),
            populated.describe(),
            "empty-build + first batch must converge to the populated plan"
        );
        // And the replanned session still maintains correctly.
        s.apply_batch(&[Update::insert(tn, tup![3i64, 4i64])])
            .unwrap();
        let mut total = 0i64;
        s.for_each_output(&mut |_, p| total += p);
        assert!(total > 0);
    }

    /// Regression: the window clock opens at session *build*, not at the
    /// first ingest. A replan firing on the very first batch — the
    /// first-data trigger's whole purpose — must record a positive
    /// `before_tps` for the window it closes, even though no earlier
    /// ingest call ever read the clock (and even on a coarse clock, via
    /// the clamped denominator).
    #[test]
    fn first_window_replan_records_positive_throughput() {
        let q = chain3();
        let (rn, sn, tn) = (sym("sch_R"), sym("sch_S"), sym("sch_T"));
        let mut s = Session::<i64>::builder(q)
            .adaptive(ReplanPolicy::default())
            .build(&Database::new())
            .unwrap();
        let mut batch: Vec<Update<i64>> = Vec::new();
        for i in 0..40i64 {
            batch.push(Update::insert(rn, tup![i, i + 1]));
        }
        for i in 0..10i64 {
            batch.push(Update::insert(sn, tup![i + 1, i + 2]));
        }
        batch.push(Update::insert(tn, tup![2i64, 3i64]));
        s.apply_batch(&batch).unwrap();
        let replans = &s.explain().replans;
        assert_eq!(replans.len(), 1, "{}", s.explain());
        assert_eq!(replans[0].batch_index, 1, "fires on the very first batch");
        assert!(
            replans[0].before_tps > 0.0 && replans[0].before_tps.is_finite(),
            "a first-window replan must carry real throughput evidence, \
             got {}",
            replans[0].before_tps
        );
    }

    #[test]
    fn adaptive_is_inert_for_specialized_engines() {
        let q = examples::fig3_query();
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        let mut s = Session::<i64>::builder(q)
            .adaptive(ReplanPolicy::default())
            .build(&Database::new())
            .unwrap();
        assert_eq!(s.engine_kind(), EngineKind::EagerFact);
        assert!(s.explain().adaptive.as_deref().unwrap().contains("inert"));
        for i in 0..32i64 {
            s.apply_batch(&[
                Update::insert(rn, tup![i, 10i64]),
                Update::insert(sn, tup![i, 20i64]),
            ])
            .unwrap();
        }
        assert!(s.explain().replans.is_empty());
    }

    /// An observed binary-join blowup must switch a forced left-deep plan
    /// to the worst-case-optimal multiway plan mid-stream, and the
    /// explain report must track the engine actually running.
    #[test]
    fn adaptive_blowup_switches_left_deep_to_multiway() {
        let [a, b, c] = ivm_data::vars(["sbl_A", "sbl_B", "sbl_C"]);
        let (rn, sn, tn) = (sym("sbl_R"), sym("sbl_S"), sym("sbl_T"));
        let q = Query::new(
            "sbl_tri",
            [],
            vec![
                ivm_query::Atom::new(rn, [a, b]),
                ivm_query::Atom::new(sn, [b, c]),
                ivm_query::Atom::new(tn, [c, a]),
            ],
        );
        let mut s = Session::<i64>::builder(q)
            .engine(EngineKind::DataflowLeftDeep)
            .adaptive(ReplanPolicy {
                min_batches_between: 2,
                min_replay_fraction: 0.1,
                min_cost_ratio: 1.5,
                blowup_factor: 2.0,
                // This test exercises the *strategy*-level trigger; park
                // the family comparison (the hub skew would otherwise
                // shift the whole session to heavy-light first).
                family_cost_ratio: f64::INFINITY,
                ..ReplanPolicy::default()
            })
            .build(&Database::new())
            .unwrap();
        assert_eq!(s.engine_kind(), EngineKind::DataflowLeftDeep);
        // A dense hub: every delta edge matches many partners, so the
        // left-deep chain materializes far more binary intermediates than
        // it emits output deltas.
        for round in 0..12i64 {
            let batch: Vec<Update<i64>> = (0..16i64)
                .flat_map(|i| {
                    let v = round * 16 + i;
                    [
                        Update::insert(rn, tup![0i64, v]),
                        Update::insert(sn, tup![v, 0i64]),
                        Update::insert(tn, tup![0i64, 0i64]),
                    ]
                })
                .collect();
            s.apply_batch(&batch).unwrap();
        }
        assert_eq!(
            s.engine_kind(),
            EngineKind::DataflowMultiway,
            "{}",
            s.explain()
        );
        assert!(s
            .explain()
            .replans
            .iter()
            .any(|ev| ev.reason.contains("blowup")));
        // The cost profile was refreshed along with the engine.
        assert!(s.explain().cost.update.contains("worst-case-optimal"));
    }

    /// A sharded adaptive session broadcasts the replan to every worker
    /// and keeps agreeing with the single-threaded oracle afterwards.
    #[test]
    fn adaptive_sharded_replans_and_stays_correct() {
        let [x, y, z] = ivm_data::vars(["sad_X", "sad_Y", "sad_Z"]);
        let (rn, sn) = (sym("sad_R"), sym("sad_S"));
        let q = Query::new(
            "sad_star",
            [x, y, z],
            vec![
                ivm_query::Atom::new(rn, [x, y]),
                ivm_query::Atom::new(sn, [x, z]),
            ],
        );
        let mut s = Session::<i64>::builder(q.clone())
            .shards(2)
            .adaptive(ReplanPolicy::default())
            .build(&Database::new())
            .unwrap();
        assert_eq!(s.engine_kind(), EngineKind::Sharded);
        let mut db: Database<i64> = Database::new();
        db.create(rn, q.atoms[0].schema.clone());
        db.create(sn, q.atoms[1].schema.clone());
        // Skewed stream: R grows 30× faster than S, so the first batch
        // already flips the blind order.
        for i in 0..6i64 {
            let mut batch: Vec<Update<i64>> = (0..30)
                .map(|j| Update::insert(rn, tup![(i * 30 + j) % 7, i * 30 + j]))
                .collect();
            batch.push(Update::insert(sn, tup![i % 7, i]));
            s.apply_batch(&batch).unwrap();
            db.apply_batch(&batch);
        }
        assert!(
            !s.explain().replans.is_empty(),
            "sharded blind build must replan: {}",
            s.explain()
        );
        let expect = ivm_data::ops::eval_join_aggregate(
            &[db.relation(rn), db.relation(sn)],
            &q.free,
            ivm_data::ops::lift_one,
        );
        let got = s.output();
        assert_eq!(got.len(), expect.len());
        for (t, p) in expect.iter() {
            assert_eq!(&got.get(t), p, "at {t:?}");
        }
    }

    /// The acceptance shape of the observability PR: a 4-shard adaptive
    /// session with a registry attached publishes session-, fleet-, and
    /// operator-level series; `metrics()` snapshots them; the replan
    /// timeline carries trigger names and throughput deltas; and the two
    /// export formats agree.
    #[test]
    fn observed_sharded_adaptive_session_publishes_metrics() {
        let [x, y, z] = ivm_data::vars(["som_X", "som_Y", "som_Z"]);
        let (rn, sn) = (sym("som_R"), sym("som_S"));
        let q = Query::new(
            "som_star",
            [x, y, z],
            vec![
                ivm_query::Atom::new(rn, [x, y]),
                ivm_query::Atom::new(sn, [x, z]),
            ],
        );
        let registry = MetricsRegistry::new();
        let mut s = Session::<i64>::builder(q)
            .shards(4)
            .adaptive(ReplanPolicy::default())
            .observe(&registry)
            .build(&Database::new())
            .unwrap();
        assert_eq!(s.explain().shards, 4);
        let mut total_updates = 0u64;
        for i in 0..6i64 {
            let mut batch: Vec<Update<i64>> = (0..30)
                .map(|j| Update::insert(rn, tup![(i * 30 + j) % 7, i * 30 + j]))
                .collect();
            batch.push(Update::insert(sn, tup![i % 7, i]));
            total_updates += batch.len() as u64;
            s.apply_batch(&batch).unwrap();
        }
        s.drain().unwrap();

        let m = s.metrics();
        // Session-level ingestion series.
        assert_eq!(m.counter("ivm.session.batches"), 6);
        assert_eq!(m.counter("ivm.session.updates"), total_updates);
        assert_eq!(m.histogram("ivm.session.ingest_ns").unwrap().count, 6);
        // Fleet-level: per-shard queues settled, updates conserved.
        assert_eq!(m.counter("ivm.fleet.updates_in"), total_updates);
        for shard in 0..4 {
            assert_eq!(m.gauge(&format!("ivm.fleet.shard{shard}.queue_depth")), 0);
        }
        // Per-operator timings exist under the workers' dataflows.
        assert!(
            m.counters_with_prefix("ivm.fleet.shard0.dataflow.op.")
                .next()
                .is_some(),
            "expected per-operator series; got:\n{}",
            m.to_prometheus()
        );
        // The blind empty-database build replanned on first data, and the
        // event carries its trigger and throughput evidence.
        assert_eq!(
            m.counter("ivm.session.replans"),
            s.explain().replans.len() as u64
        );
        let ev = &s.explain().replans[0];
        assert_eq!(ev.trigger, ivm_dataflow::ReplanTrigger::FirstData);
        assert!(ev.before_tps > 0.0);
        assert!(ev.after_tps.is_some(), "later ingests refresh after_tps");
        let rendered = s.explain().to_string();
        assert!(rendered.contains("[first-data]"), "{rendered}");
        assert!(rendered.contains("replans:"), "{rendered}");
        // Both export formats render every series.
        let prom = m.to_prometheus();
        let json = m.render_json();
        assert!(prom.contains("ivm_session_ingest_ns_bucket"), "{prom}");
        assert!(json.contains("ivm.session.ingest_ns"), "{json}");
    }

    #[test]
    fn detached_session_metrics_are_empty() {
        let q = examples::fig3_query();
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        let mut s = Session::<i64>::builder(q).build(&Database::new()).unwrap();
        s.apply_batch(&[
            Update::insert(rn, tup![1i64, 10i64]),
            Update::insert(sn, tup![1i64, 20i64]),
        ])
        .unwrap();
        assert!(s.metrics().is_empty());
    }

    /// A triangle query with three distinct relations, for the
    /// cross-family tests below.
    fn tri3(prefix: &str) -> (Query, Sym, Sym, Sym) {
        let [a, b, c] = ivm_data::vars([
            format!("{prefix}A").as_str(),
            format!("{prefix}B").as_str(),
            format!("{prefix}C").as_str(),
        ]);
        let (rn, sn, tn) = (
            sym(format!("{prefix}R").as_str()),
            sym(format!("{prefix}S").as_str()),
            sym(format!("{prefix}T").as_str()),
        );
        let q = Query::new(
            format!("{prefix}tri").as_str(),
            [],
            vec![
                ivm_query::Atom::new(rn, [a, b]),
                ivm_query::Atom::new(sn, [b, c]),
                ivm_query::Atom::new(tn, [c, a]),
            ],
        );
        (q, rn, sn, tn)
    }

    /// An aggressive policy for the family-shift tests: the hysteresis
    /// gates are lowered so a handful of small batches suffices.
    fn eager_family_policy() -> ReplanPolicy {
        ReplanPolicy {
            min_batches_between: 2,
            min_replay_fraction: 0.01,
            family_cost_ratio: 2.0,
            ..ReplanPolicy::default()
        }
    }

    /// The tentpole's adaptive acceptance shape: a session forced onto
    /// the dataflow family sees learned degree skew, swaps the whole
    /// backend family to heavy-light mid-stream (a [`ReplanTrigger::
    /// FamilyShift`] event in `explain().replans`), keeps the exact
    /// count — and when the skew subsides, swaps back.
    #[test]
    fn adaptive_session_swaps_engine_family_and_back() {
        let (q, rn, sn, tn) = tri3("fsw_");
        let registry = MetricsRegistry::new();
        let mut s = Session::<i64>::builder(q.clone())
            .engine(EngineKind::DataflowMultiway)
            .adaptive(eager_family_policy())
            .observe(&registry)
            .build(&Database::new())
            .unwrap();
        assert_eq!(s.engine_kind(), EngineKind::DataflowMultiway);
        let mut db: Database<i64> = Database::new();
        for atom in &q.atoms {
            db.create(atom.name, atom.schema.clone());
        }
        // Hub skew: every v closes the triangle (0, v, 1000), so R's key
        // 0 accumulates degree ≫ √N while the count tracks exactly.
        let mut fired_at = None;
        for round in 0..4i64 {
            let mut batch: Vec<Update<i64>> = (0..10i64)
                .flat_map(|i| {
                    let v = 1 + round * 10 + i;
                    [
                        Update::insert(rn, tup![0i64, v]),
                        Update::insert(sn, tup![v, 1000i64]),
                    ]
                })
                .collect();
            if round == 0 {
                batch.push(Update::insert(tn, tup![1000i64, 0i64]));
            }
            s.apply_batch(&batch).unwrap();
            db.apply_batch(&batch);
            if fired_at.is_none() && s.engine_kind() == EngineKind::HeavyLight {
                fired_at = Some(round);
            }
        }
        assert_eq!(s.engine_kind(), EngineKind::HeavyLight, "{}", s.explain());
        let shift = s
            .explain()
            .replans
            .iter()
            .find(|ev| ev.trigger == ReplanTrigger::FamilyShift)
            .expect("a family-shift event must be recorded");
        assert!(shift.reason.contains("skew"), "{}", shift.reason);
        assert!(shift.to.contains("HeavyLight"), "{}", shift.to);
        assert!(
            fired_at.is_some(),
            "the swap must happen mid-stream, not at the end"
        );
        // The swapped-in engine maintains the same view: 40 triangles.
        assert_eq!(s.output().get(&Tuple::empty()), 40);
        assert!(s.explain().to_string().contains("[family-shift]"));
        assert!(s.explain().heavy_light.is_some());
        assert!(registry.snapshot().counter("ivm.hl.updates") > 0);

        // Skew subsides: remove the hub, leave a flat edge set — the
        // auxiliary views stop paying for themselves and the session
        // returns to the dataflow family, still agreeing with the
        // from-scratch oracle (zero triangles remain).
        let deletes: Vec<Update<i64>> = (1..41i64)
            .map(|v| Update::delete(rn, tup![0i64, v]))
            .collect();
        s.apply_batch(&deletes).unwrap();
        db.apply_batch(&deletes);
        for round in 0..4i64 {
            let batch: Vec<Update<i64>> = (0..30i64)
                .map(|i| {
                    let v = 2000 + round * 30 + i;
                    Update::insert(rn, tup![v, v])
                })
                .collect();
            s.apply_batch(&batch).unwrap();
            db.apply_batch(&batch);
        }
        assert_eq!(
            s.engine_kind(),
            EngineKind::DataflowMultiway,
            "{}",
            s.explain()
        );
        assert!(s.explain().heavy_light.is_none());
        let shifts: Vec<_> = s
            .explain()
            .replans
            .iter()
            .filter(|ev| ev.trigger == ReplanTrigger::FamilyShift)
            .collect();
        assert!(shifts.len() >= 2, "{}", s.explain());
        assert!(
            shifts.last().unwrap().reason.contains("subsided"),
            "{}",
            shifts.last().unwrap().reason
        );
        // Final view identical to a from-scratch oracle over the same db.
        let mut oracle = Session::<i64>::builder(q).build(&db).unwrap();
        assert_eq!(
            s.output().get(&Tuple::empty()),
            oracle.output().get(&Tuple::empty())
        );
        assert_eq!(s.output().get(&Tuple::empty()), 0);
    }

    /// Sharded fleets cannot swap families (workers own their engines):
    /// the family comparison must stay silent for them even under the
    /// same skew that flips a single-threaded session.
    #[test]
    fn sharded_sessions_never_family_shift() {
        let (q, rn, sn, tn) = tri3("fshard_");
        let mut s = Session::<i64>::builder(q)
            .shards(2)
            .adaptive(eager_family_policy())
            .build(&Database::new())
            .unwrap();
        for round in 0..4i64 {
            let mut batch: Vec<Update<i64>> = (0..10i64)
                .flat_map(|i| {
                    let v = 1 + round * 10 + i;
                    [
                        Update::insert(rn, tup![0i64, v]),
                        Update::insert(sn, tup![v, 1000i64]),
                    ]
                })
                .collect();
            batch.push(Update::insert(tn, tup![1000i64, 0i64]));
            s.apply_batch(&batch).unwrap();
        }
        s.drain().unwrap();
        assert_eq!(s.engine_kind(), EngineKind::Sharded);
        assert!(s
            .explain()
            .replans
            .iter()
            .all(|ev| ev.trigger != ReplanTrigger::FamilyShift));
    }

    #[test]
    fn enqueue_and_drain_work_on_every_backend() {
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        for shards in [None, Some(2)] {
            let mut b = Session::<i64>::builder(examples::fig3_query());
            if let Some(n) = shards {
                b = b.shards(n);
            }
            let mut s = b.build(&Database::new()).unwrap();
            s.enqueue_batch(&[
                Update::insert(rn, tup![1i64, 10i64]),
                Update::insert(sn, tup![1i64, 20i64]),
            ])
            .unwrap();
            s.drain().unwrap();
            assert_eq!(s.output().get(&tup![1i64, 10i64, 20i64]), 1, "{shards:?}");
        }
    }
}
