//! Dichotomy-driven engine selection.
//!
//! The selection table (also in the README):
//!
//! | condition (first match wins) | engine | why |
//! |---|---|---|
//! | `.engine(kind)` forced | that kind | benchmarking / comparison rows |
//! | `.shards(n)` requested | [`EngineKind::Sharded`] | scale-out across n workers |
//! | tractable CQAP | [`EngineKind::Cqap`] | O(1) update + O(1) access (Thm 4.8) |
//! | q-hierarchical ∧ self-join-free | [`EngineKind::EagerFact`] | O(1) update + O(1) delay (Thm 4.1) |
//! | α-acyclic | [`EngineKind::DataflowLeftDeep`] | O(|δQ|)-style batched deltas |
//! | cyclic | [`EngineKind::DataflowMultiway`] | worst-case-optimal, no binary intermediates |

use crate::classify::{Classification, QueryClass};

/// Every engine the session layer can stand up.
///
/// The first four are the eager/lazy × list/fact grid of Fig 4
/// (auto-selection only ever picks `EagerFact`; the other three exist for
/// forced comparison rows, e.g. the Fig 4 bench). The rest are the CQAP
/// engine, the generic dataflow engine under either join plan, and the
/// hash-partitioned parallel fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// `ivm_core::EagerFactEngine` — factorized view tree, F-IVM style.
    EagerFact,
    /// `ivm_core::EagerListEngine` — view tree + materialized output.
    EagerList,
    /// `ivm_core::LazyFactEngine` — queued updates, factorized refresh.
    LazyFact,
    /// `ivm_core::LazyListEngine` — re-evaluation baseline.
    LazyList,
    /// `ivm_core::cqap::CqapEngine` — fractured view trees with O(1)
    /// access requests.
    Cqap,
    /// `ivm_dataflow::DataflowEngine`, left-deep binary delta joins.
    DataflowLeftDeep,
    /// `ivm_dataflow::DataflowEngine`, worst-case-optimal multiway join.
    DataflowMultiway,
    /// `ivm_hl::HeavyLightEngine` — heavy-light partitioned IVMε
    /// maintenance with O(N^max(ε,1−ε)) amortized updates for
    /// triangle-class cyclic queries over a ring.
    HeavyLight,
    /// `ivm_shard::ShardedEngine` — one dataflow per shard behind a
    /// routing facade.
    Sharded,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::EagerFact => "eager-fact (factorized view tree)",
            EngineKind::EagerList => "eager-list (view tree + materialized output)",
            EngineKind::LazyFact => "lazy-fact (queued view tree)",
            EngineKind::LazyList => "lazy-list (re-evaluation)",
            EngineKind::Cqap => "cqap (fractured view trees)",
            EngineKind::DataflowLeftDeep => "dataflow (left-deep delta joins)",
            EngineKind::DataflowMultiway => "dataflow (worst-case-optimal multiway)",
            EngineKind::HeavyLight => "heavy-light (IVM\u{3b5} partitioned)",
            EngineKind::Sharded => "sharded dataflow fleet",
        })
    }
}

/// A selection verdict: the engine to build plus the human-readable
/// reason `explain()` reports.
#[derive(Clone, Debug)]
pub struct Selection {
    /// The engine to stand up.
    pub kind: EngineKind,
    /// Why the dichotomy picked it.
    pub reason: String,
}

/// Pick the engine for a classified query.
///
/// `shards` is the builder's `.shards(n)` request (scale-out overrides
/// the single-threaded dichotomy — every class runs behind the shard
/// router, which plans its own per-shard dataflow strategy).
pub fn select(cls: &Classification, shards: Option<usize>) -> Selection {
    if let Some(n) = shards {
        return Selection {
            kind: EngineKind::Sharded,
            reason: format!(
                "scale-out requested: {n} hash-partitioned shard(s), each \
                 running the auto-planned dataflow for this query"
            ),
        };
    }
    match cls.class {
        QueryClass::CqapTractable => Selection {
            kind: EngineKind::Cqap,
            reason: "tractable CQAP (Thm 4.8): fractured view trees serve \
                     access requests with constant delay under O(1) updates"
                .into(),
        },
        QueryClass::QHierarchical if cls.self_join_free => Selection {
            kind: EngineKind::EagerFact,
            reason: "q-hierarchical (Thm 4.1): a factorized view tree gives \
                     O(1) updates and O(1) enumeration delay"
                .into(),
        },
        QueryClass::QHierarchical => Selection {
            kind: if cls.acyclic {
                EngineKind::DataflowLeftDeep
            } else {
                EngineKind::DataflowMultiway
            },
            reason: "q-hierarchical but with a self-join: view trees need \
                     unique relation names, so the generic dataflow engine \
                     maintains it instead"
                .into(),
        },
        QueryClass::Acyclic => Selection {
            kind: EngineKind::DataflowLeftDeep,
            reason: "acyclic but not q-hierarchical: no O(1)-update engine \
                     exists (OuMv-conditional); cost-ordered left-deep \
                     delta joins bound per-batch work by O(|δQ|)-style terms"
                .into(),
        },
        QueryClass::Cyclic if cls.hl_eligible => Selection {
            kind: EngineKind::HeavyLight,
            reason: "triangle-class cycle: heavy-light partitioned \
                     maintenance (IVM\u{3b5}) amortizes single-tuple updates \
                     to O(N^max(\u{3b5},1\u{2212}\u{3b5})) \u{2014} sublinear, where any \
                     join-at-a-time delta pass can be forced to \u{3a9}(N) \
                     (Sec. 3.3)"
                .into(),
        },
        QueryClass::Cyclic => Selection {
            kind: EngineKind::DataflowMultiway,
            reason: "cyclic hypergraph: the worst-case-optimal multiway \
                     join materializes no binary intermediates (Sec. 3.3)"
                .into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use ivm_query::examples;

    #[test]
    fn selection_follows_the_table() {
        let pick = |q: &ivm_query::Query| select(&classify(q), None).kind;
        assert_eq!(pick(&examples::fig3_query()), EngineKind::EagerFact);
        assert_eq!(pick(&examples::retailer_query().0), EngineKind::EagerFact);
        assert_eq!(pick(&examples::triangle_count()), EngineKind::HeavyLight);
        // A cyclic query outside the heavy-light shape (self-join
        // triangle stripped of its access pattern) still goes multiway.
        let [a, b, c] = ivm_data::vars(["sel_tA", "sel_tB", "sel_tC"]);
        let e = ivm_data::sym("sel_tE");
        let self_join_tri = ivm_query::Query::new(
            "sel_tri",
            [],
            vec![
                ivm_query::Atom::new(e, [a, b]),
                ivm_query::Atom::new(e, [b, c]),
                ivm_query::Atom::new(e, [c, a]),
            ],
        );
        assert_eq!(pick(&self_join_tri), EngineKind::DataflowMultiway);
        assert_eq!(pick(&examples::triangle_detect_cqap()), EngineKind::Cqap);
        assert_eq!(pick(&examples::path3_query()), EngineKind::DataflowLeftDeep);
        assert_eq!(pick(&examples::ex51_query()), EngineKind::DataflowLeftDeep);
    }

    #[test]
    fn shards_override_everything() {
        let cls = classify(&examples::fig3_query());
        assert_eq!(select(&cls, Some(4)).kind, EngineKind::Sharded);
    }

    #[test]
    fn q_hierarchical_self_join_falls_back_to_dataflow() {
        // Q(a,b) = E(a,b)·E(a,b): q-hierarchical as a query, but the view
        // tree cannot store two atoms under one relation name.
        let [a, b] = ivm_data::vars(["sel_A", "sel_B"]);
        let e = ivm_data::sym("sel_E");
        let q = ivm_query::Query::new(
            "sel_sj",
            [a, b],
            vec![
                ivm_query::Atom::new(e, [a, b]),
                ivm_query::Atom::new(e, [a, b]),
            ],
        );
        let cls = classify(&q);
        assert!(cls.q_hierarchical && !cls.self_join_free);
        assert_eq!(select(&cls, None).kind, EngineKind::DataflowLeftDeep);
    }
}
