//! One batch-first front door for every engine in the workspace.
//!
//! The paper's central message is a *dichotomy*: classify the query
//! first, then run the engine whose complexity its class admits. Before
//! this crate, the caller did the classifying — picking among
//! `EagerFactEngine::new`, `CqapEngine::new`,
//! `DataflowEngine::new_with_strategy`, and `ShardedEngine::new` by hand,
//! each with its own ingestion spelling. The session layer moves that
//! decision where the paper puts it, into the system:
//!
//! ```
//! use ivm_core::Maintainer;           // the one batch-first surface
//! use ivm_data::{sym, tup, Database, Update};
//! use ivm_session::{EngineKind, Session};
//!
//! let q = ivm_query::examples::fig3_query();       // q-hierarchical
//! let mut s = Session::<i64>::builder(q).build(&Database::new()).unwrap();
//! assert_eq!(s.engine_kind(), EngineKind::EagerFact);
//! println!("{}", s.explain());                     // class, engine, costs
//!
//! s.apply_batch(&[
//!     Update::insert(sym("f3_R"), tup![1i64, 10i64]),
//!     Update::insert(sym("f3_S"), tup![1i64, 20i64]),
//! ])
//! .unwrap();
//! assert_eq!(s.output().get(&tup![1i64, 10i64, 20i64]), 1);
//! ```
//!
//! Four modules, one pipeline:
//!
//! * [`classify`] — run every dichotomy analysis (`is_q_hierarchical`,
//!   `is_tractable_cqap`, GYO acyclicity, free-connexity, self-join
//!   freedom) and condense them into a [`QueryClass`];
//! * [`select`] — map the class (plus the builder's `.shards(n)` /
//!   `.engine(kind)` requests) to an [`EngineKind`];
//! * [`session`] — build the engine and wrap it in the uniform
//!   [`Session`] handle, itself an `ivm_core::Maintainer`;
//! * [`explain`] — the auditable report: which engine, why, and the
//!   predicted preprocessing/update/delay costs.
//!
//! This is the API the multi-node router and adaptive replanning
//! follow-ons plug into: both are engine swaps behind an unchanged
//! `Session` surface.

pub mod classify;
pub mod explain;
pub mod select;
pub mod session;

pub use classify::{classify, Classification, QueryClass};
pub use explain::{cost_profile, CostProfile, Explain, ReplanEvent};
pub use ivm_dataflow::{LearnedCardinalities, ReplanPolicy, ReplanTrigger};
pub use ivm_obs::{MetricsRegistry, MetricsSnapshot};
pub use select::{select, EngineKind, Selection};
pub use session::{Session, SessionBuilder};
