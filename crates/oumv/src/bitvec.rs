//! A minimal fixed-length bitset (`Vec<u64>` words).

/// A fixed-length bit vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// All-zero vector of length `n`.
    pub fn new(n: usize) -> Self {
        BitVec {
            words: vec![0; n.div_ceil(64)],
            len: n,
        }
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether every bit is zero.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clear bit `i`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Whether `self ∧ other` is non-zero (word-parallel).
    pub fn intersects(&self, other: &BitVec) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut v = BitVec::new(130);
        v.set(0);
        v.set(64);
        v.set(129);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        v.clear(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut v = BitVec::new(200);
        for &i in &[3, 64, 65, 199] {
            v.set(i);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3, 64, 65, 199]);
    }

    #[test]
    fn intersects() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(70);
        assert!(!a.intersects(&b));
        b.set(70);
        assert!(a.intersects(&b));
        assert!(!BitVec::new(10).intersects(&BitVec::new(10)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut v = BitVec::new(10);
        v.set(10);
    }
}
