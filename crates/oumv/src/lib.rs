//! The Online Vector-Matrix-Vector multiplication (OuMv) problem
//! (Def. 3.3) and the reduction of Theorem 3.4.
//!
//! OuMv: given a Boolean matrix `M ∈ B^{n×n}` and then `n` online pairs of
//! Boolean vectors `(u_r, v_r)`, output `u_rᵀ M v_r` after seeing each
//! pair. The OuMv conjecture says no algorithm solves this in O(n^{3−γ}).
//!
//! Theorem 3.4 turns a fast dynamic triangle-detection algorithm into a
//! fast OuMv algorithm — so, conditionally, no IVM algorithm maintains the
//! Boolean triangle query with O(N^{1/2−γ}) updates and O(N^{1−γ}) delay.
//! This crate implements both sides so the reduction is *runnable*:
//!
//! * [`NaiveOuMv`] — the direct bitset evaluation, O(n²/64) per round;
//! * [`ReductionOuMv`] — Algorithm B of the paper: encode `M` as `S`,
//!   each `u_r` as `R`, each `v_r` as `T`, and answer with the maintained
//!   triangle count.

pub mod bitvec;

use bitvec::BitVec;
use ivm_ivme::{Rel, TriangleIvmEps, TriangleMaintainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An OuMv instance: the matrix and the online vector pairs.
#[derive(Clone, Debug)]
pub struct OuMvInstance {
    /// Dimension `n`.
    pub n: usize,
    /// Matrix rows (each a bitset of length `n`).
    pub m: Vec<BitVec>,
    /// The `n` online `(u_r, v_r)` pairs.
    pub pairs: Vec<(BitVec, BitVec)>,
}

impl OuMvInstance {
    /// A random instance with the given bit density.
    pub fn random(n: usize, density: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rand_vec = |rng: &mut StdRng| {
            let mut v = BitVec::new(n);
            for i in 0..n {
                if rng.gen_bool(density) {
                    v.set(i);
                }
            }
            v
        };
        let m = (0..n).map(|_| rand_vec(&mut rng)).collect();
        let pairs = (0..n)
            .map(|_| (rand_vec(&mut rng), rand_vec(&mut rng)))
            .collect();
        OuMvInstance { n, m, pairs }
    }
}

/// An online OuMv solver: sees the matrix once, then answers rounds.
pub trait OuMvSolver {
    /// Initialize with the matrix.
    fn init(&mut self, n: usize, m: &[BitVec]);
    /// Answer one round: `uᵀ M v`.
    fn round(&mut self, u: &BitVec, v: &BitVec) -> bool;
    /// Solver name for reports.
    fn name(&self) -> &'static str;
}

/// Direct evaluation with bitsets: O(n²/64) per round, O(n³/64) total —
/// the best known elementary bound (up to polylog shavings).
#[derive(Default)]
pub struct NaiveOuMv {
    m: Vec<BitVec>,
}

impl OuMvSolver for NaiveOuMv {
    fn init(&mut self, _n: usize, m: &[BitVec]) {
        self.m = m.to_vec();
    }

    fn round(&mut self, u: &BitVec, v: &BitVec) -> bool {
        for i in u.iter_ones() {
            if self.m[i].intersects(v) {
                return true;
            }
        }
        false
    }

    fn name(&self) -> &'static str {
        "naive-bitset"
    }
}

/// Algorithm B of Theorem 3.4: solve OuMv through a dynamic triangle
/// detection engine.
///
/// * `S(i, j) = M[i][j]` — loaded once, `< n²` inserts;
/// * each round deletes the previous `R`/`T` encodings (≤ 2n tuples),
///   inserts `R(a, i) = u[i]` and `T(j, a) = v[j]` for a fixed constant
///   node `a`, and reads `Qb = (count > 0)`.
///
/// With the IVMε engine at ε = ½ this runs in
/// O(n² · (n²)^{1/2}) = O(n³) — the reduction is what turns any
/// *sub-√N-update* engine into a sub-cubic OuMv solver.
pub struct ReductionOuMv {
    engine: TriangleIvmEps,
    /// The constant node `a` (distinct from all matrix indices).
    anchor: u64,
    prev_u: Vec<u64>,
    prev_v: Vec<u64>,
}

impl ReductionOuMv {
    /// Build with the given ε for the inner triangle engine.
    pub fn with_eps(eps: f64) -> Self {
        ReductionOuMv {
            engine: TriangleIvmEps::new(eps),
            anchor: u64::MAX,
            prev_u: Vec::new(),
            prev_v: Vec::new(),
        }
    }

    /// Inner-work counter of the triangle engine.
    pub fn work(&self) -> u64 {
        self.engine.work()
    }
}

impl Default for ReductionOuMv {
    fn default() -> Self {
        Self::with_eps(0.5)
    }
}

impl OuMvSolver for ReductionOuMv {
    fn init(&mut self, _n: usize, m: &[BitVec]) {
        for (i, row) in m.iter().enumerate() {
            for j in row.iter_ones() {
                self.engine.apply(Rel::S, i as u64, j as u64, 1);
            }
        }
    }

    fn round(&mut self, u: &BitVec, v: &BitVec) -> bool {
        // Delete the previous round's vector encodings…
        for &i in &self.prev_u {
            self.engine.apply(Rel::R, self.anchor, i, -1);
        }
        for &j in &self.prev_v {
            self.engine.apply(Rel::T, j, self.anchor, -1);
        }
        // …and insert the new ones.
        self.prev_u = u.iter_ones().map(|i| i as u64).collect();
        self.prev_v = v.iter_ones().map(|j| j as u64).collect();
        let us = self.prev_u.clone();
        let vs = self.prev_v.clone();
        for &i in &us {
            self.engine.apply(Rel::R, self.anchor, i, 1);
        }
        for &j in &vs {
            self.engine.apply(Rel::T, j, self.anchor, 1);
        }
        self.engine.detect()
    }

    fn name(&self) -> &'static str {
        "triangle-reduction"
    }
}

/// Run a solver over an instance, returning the per-round answers.
pub fn solve(solver: &mut dyn OuMvSolver, inst: &OuMvInstance) -> Vec<bool> {
    solver.init(inst.n, &inst.m);
    inst.pairs.iter().map(|(u, v)| solver.round(u, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example (Sec. 3.4).
    #[test]
    fn paper_reduction_example() {
        // u⊤ = (0 1 0), M = [[0,1,0],[1,0,0],[0,0,1]], v = (1,0,0)ᵀ.
        let n = 3;
        let mut m = vec![BitVec::new(n), BitVec::new(n), BitVec::new(n)];
        m[0].set(1);
        m[1].set(0);
        m[2].set(2);
        let mut u = BitVec::new(n);
        u.set(1);
        let mut v = BitVec::new(n);
        v.set(0);
        // u⊤Mv = u[1]·M[1][0]·v[0] = 1.
        let inst = OuMvInstance {
            n,
            m,
            pairs: vec![(u, v)],
        };
        let mut naive = NaiveOuMv::default();
        let mut red = ReductionOuMv::default();
        assert_eq!(solve(&mut naive, &inst), vec![true]);
        assert_eq!(solve(&mut red, &inst), vec![true]);
    }

    /// The reduction agrees with the naive solver on random instances for
    /// several ε values and densities.
    #[test]
    fn reduction_matches_naive() {
        for seed in 0..5u64 {
            for &density in &[0.05, 0.3, 0.7] {
                let inst = OuMvInstance::random(12, density, seed);
                let mut naive = NaiveOuMv::default();
                let expected = solve(&mut naive, &inst);
                for &eps in &[0.0, 0.5, 1.0] {
                    let mut red = ReductionOuMv::with_eps(eps);
                    assert_eq!(
                        solve(&mut red, &inst),
                        expected,
                        "seed={seed} density={density} eps={eps}"
                    );
                }
            }
        }
    }

    /// All-zero vectors answer false; full vectors answer true whenever
    /// the matrix has any 1.
    #[test]
    fn degenerate_rounds() {
        let n = 8;
        let mut m = vec![BitVec::new(n); n];
        m[3].set(5);
        let zero = BitVec::new(n);
        let mut full = BitVec::new(n);
        for i in 0..n {
            full.set(i);
        }
        let inst = OuMvInstance {
            n,
            m,
            pairs: vec![
                (zero.clone(), zero.clone()),
                (full.clone(), full.clone()),
                (zero, full),
            ],
        };
        let mut red = ReductionOuMv::default();
        assert_eq!(solve(&mut red, &inst), vec![false, true, false]);
    }
}
