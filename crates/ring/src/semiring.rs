//! The [`Semiring`] and [`Ring`] traits.

use std::fmt::Debug;

/// A commutative semiring `(D, +, *, 0, 1)`.
///
/// Laws (checked by property tests in `tests/axioms.rs`):
///
/// * `(D, +, 0)` is a commutative monoid;
/// * `(D, *, 1)` is a commutative monoid;
/// * `*` distributes over `+`;
/// * `0` annihilates: `0 * a = 0`.
///
/// Semirings suffice for insert-only maintenance (Sec. 4.6 of the paper);
/// supporting deletes requires the additive inverses of [`Ring`].
pub trait Semiring: Clone + Debug + PartialEq + Send + Sync + 'static {
    /// The additive identity. A tuple mapped to `zero()` is absent.
    fn zero() -> Self;

    /// The multiplicative identity; the payload of a freshly inserted tuple.
    fn one() -> Self;

    /// Addition; combines payloads of a tuple derived multiple ways.
    fn plus(&self, other: &Self) -> Self;

    /// Multiplication; combines payloads of joined tuples.
    fn times(&self, other: &Self) -> Self;

    /// Whether this value is the additive identity.
    ///
    /// Relations prune zero payloads eagerly so that their size is the
    /// number of *present* tuples.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// In-place addition. Override when `plus` allocates.
    fn add_assign(&mut self, other: &Self) {
        *self = self.plus(other);
    }

    /// The additive inverse, when this semiring actually has one — i.e.
    /// when the implementation is a [`Ring`] in disguise. `None` by
    /// default.
    ///
    /// This exists for engines that are generic over `Semiring` at the
    /// API surface but fundamentally need subtraction internally (the
    /// heavy-light engine transfers view contributions with sign when a
    /// key migrates across the partition boundary). Such an engine probes
    /// `try_neg` at *build* time and refuses inverse-less payload types
    /// with a typed error, instead of forcing a `Ring` bound through
    /// every caller. Every `Ring` instance in this workspace overrides it
    /// to `Some(self.neg())`; a lawful implementation either has inverses
    /// for all values or for none.
    fn try_neg(&self) -> Option<Self> {
        None
    }
}

/// A commutative ring: a [`Semiring`] with additive inverses.
///
/// The inverse is what encodes deletes: a single-tuple delete of `t` is the
/// update `t ↦ -1` (in `Z`), and applying it removes one derivation of `t`.
pub trait Ring: Semiring {
    /// The additive inverse.
    fn neg(&self) -> Self;

    /// Subtraction, `self + (-other)`.
    fn minus(&self, other: &Self) -> Self {
        self.plus(&other.neg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero_uses_eq() {
        assert!(0i64.is_zero());
        assert!(!3i64.is_zero());
    }

    #[test]
    fn minus_is_plus_neg() {
        assert_eq!(7i64.minus(&3), 4);
        assert_eq!(3i64.minus(&7), -4);
    }
}
