//! The degree-2 *covariance ring* used for in-database machine learning.
//!
//! F-IVM [22, 33, 34] maintains the gradient aggregates of linear regression
//! inside a single view tree by swapping the payload ring: instead of tuple
//! counts, payloads are triples `(c, s, Q)` where
//!
//! * `c ∈ Z` is a count,
//! * `s ∈ R^D` accumulates per-feature sums `Σ x_i`, and
//! * `Q ∈ R^{D×D}` accumulates second moments `Σ x_i · x_j`
//!
//! over the (unmaterialized) join result. Maintaining one view tree over
//! this ring under updates keeps a regression model's normal equations
//! fresh without ever enumerating the join.
//!
//! Ring structure (all sums over derivations of a tuple):
//!
//! ```text
//! 0 = (0, 0, 0)           1 = (1, 0, 0)
//! (c1,s1,Q1) + (c2,s2,Q2) = (c1+c2, s1+s2, Q1+Q2)
//! (c1,s1,Q1) * (c2,s2,Q2) = (c1*c2, c2*s1 + c1*s2,
//!                            c2*Q1 + c1*Q2 + s1 s2ᵀ + s2 s1ᵀ)
//! ```
//!
//! A value `x` of feature `i` is lifted to `g_i(x) = (1, x·e_i, x²·E_ii)`.

use crate::semiring::{Ring, Semiring};

/// An element of the degree-2 covariance ring over `D` features.
#[derive(Clone, Debug, PartialEq)]
pub struct Covar<const D: usize> {
    /// Count of derivations.
    pub c: i64,
    /// Per-feature linear sums.
    pub s: [f64; D],
    /// Second-moment matrix (symmetric).
    pub q: [[f64; D]; D],
}

impl<const D: usize> Covar<D> {
    /// Lift feature `i` with value `x`: `(1, x·e_i, x²·E_ii)`.
    ///
    /// # Panics
    /// Panics if `i >= D`.
    pub fn lift(i: usize, x: f64) -> Self {
        assert!(i < D, "feature index {i} out of bounds for D={D}");
        let mut s = [0.0; D];
        let mut q = [[0.0; D]; D];
        s[i] = x;
        q[i][i] = x * x;
        Covar { c: 1, s, q }
    }

    /// Count of contributing derivations (`SUM(1)` over the join).
    pub fn count(&self) -> i64 {
        self.c
    }

    /// `Σ x_i` over the join.
    pub fn sum(&self, i: usize) -> f64 {
        self.s[i]
    }

    /// `Σ x_i · x_j` over the join.
    pub fn moment(&self, i: usize, j: usize) -> f64 {
        self.q[i][j]
    }

    /// Sample mean of feature `i`, or `None` on an empty aggregate.
    pub fn mean(&self, i: usize) -> Option<f64> {
        (self.c != 0).then(|| self.s[i] / self.c as f64)
    }

    /// Sample covariance `E[x_i x_j] - E[x_i]E[x_j]`, or `None` when empty.
    pub fn cov(&self, i: usize, j: usize) -> Option<f64> {
        (self.c != 0).then(|| {
            let n = self.c as f64;
            self.q[i][j] / n - (self.s[i] / n) * (self.s[j] / n)
        })
    }
}

#[allow(clippy::needless_range_loop)] // index-based matrix code
impl<const D: usize> Semiring for Covar<D> {
    fn zero() -> Self {
        Covar {
            c: 0,
            s: [0.0; D],
            q: [[0.0; D]; D],
        }
    }

    fn one() -> Self {
        Covar {
            c: 1,
            s: [0.0; D],
            q: [[0.0; D]; D],
        }
    }

    fn plus(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    fn times(&self, other: &Self) -> Self {
        let (c1, c2) = (self.c as f64, other.c as f64);
        let mut s = [0.0; D];
        let mut q = [[0.0; D]; D];
        for i in 0..D {
            s[i] = c2 * self.s[i] + c1 * other.s[i];
        }
        for i in 0..D {
            for j in 0..D {
                q[i][j] = c2 * self.q[i][j]
                    + c1 * other.q[i][j]
                    + self.s[i] * other.s[j]
                    + other.s[i] * self.s[j];
            }
        }
        Covar {
            c: self.c * other.c,
            s,
            q,
        }
    }

    fn is_zero(&self) -> bool {
        self.c == 0
            && self.s.iter().all(|v| *v == 0.0)
            && self.q.iter().all(|row| row.iter().all(|v| *v == 0.0))
    }

    fn try_neg(&self) -> Option<Self> {
        Some(Ring::neg(self))
    }

    fn add_assign(&mut self, other: &Self) {
        self.c += other.c;
        for i in 0..D {
            self.s[i] += other.s[i];
        }
        for i in 0..D {
            for j in 0..D {
                self.q[i][j] += other.q[i][j];
            }
        }
    }
}

#[allow(clippy::needless_range_loop)]
impl<const D: usize> Ring for Covar<D> {
    fn neg(&self) -> Self {
        let mut out = self.clone();
        out.c = -out.c;
        for i in 0..D {
            out.s[i] = -out.s[i];
        }
        for i in 0..D {
            for j in 0..D {
                out.q[i][j] = -out.q[i][j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_encodes_first_and_second_moment() {
        let g = Covar::<3>::lift(1, 4.0);
        assert_eq!(g.count(), 1);
        assert_eq!(g.sum(1), 4.0);
        assert_eq!(g.moment(1, 1), 16.0);
        assert_eq!(g.sum(0), 0.0);
    }

    #[test]
    fn product_of_two_features_gives_cross_moment() {
        // Tuple with features x0 = 2, x1 = 3 (one derivation).
        let g = Covar::<2>::lift(0, 2.0).times(&Covar::<2>::lift(1, 3.0));
        assert_eq!(g.count(), 1);
        assert_eq!(g.sum(0), 2.0);
        assert_eq!(g.sum(1), 3.0);
        assert_eq!(g.moment(0, 0), 4.0);
        assert_eq!(g.moment(1, 1), 9.0);
        assert_eq!(g.moment(0, 1), 6.0);
        assert_eq!(g.moment(1, 0), 6.0);
    }

    #[test]
    fn sum_of_tuples_accumulates_statistics() {
        // Two tuples: (x0, x1) = (2, 3) and (1, 5).
        let t1 = Covar::<2>::lift(0, 2.0).times(&Covar::<2>::lift(1, 3.0));
        let t2 = Covar::<2>::lift(0, 1.0).times(&Covar::<2>::lift(1, 5.0));
        let agg = t1.plus(&t2);
        assert_eq!(agg.count(), 2);
        assert_eq!(agg.sum(0), 3.0);
        assert_eq!(agg.sum(1), 8.0);
        assert_eq!(agg.moment(0, 1), 2.0 * 3.0 + 1.0 * 5.0);
        assert_eq!(agg.mean(0), Some(1.5));
    }

    #[test]
    fn delete_cancels_insert() {
        let t = Covar::<2>::lift(0, 2.0).times(&Covar::<2>::lift(1, 3.0));
        let zero = t.plus(&t.neg());
        assert!(zero.is_zero());
    }

    #[test]
    fn multiplying_by_count_scales() {
        // A multiplicity-2 tuple is `2 * one()` times the lifted value.
        let two = Covar::<1> {
            c: 2,
            ..Covar::one()
        };
        let g = Covar::<1>::lift(0, 5.0);
        let scaled = two.times(&g);
        assert_eq!(scaled.count(), 2);
        assert_eq!(scaled.sum(0), 10.0);
        assert_eq!(scaled.moment(0, 0), 50.0);
    }

    #[test]
    fn cov_of_constant_feature_is_zero() {
        let t1 = Covar::<1>::lift(0, 4.0);
        let t2 = Covar::<1>::lift(0, 4.0);
        let agg = t1.plus(&t2);
        assert_eq!(agg.cov(0, 0), Some(0.0));
    }
}
