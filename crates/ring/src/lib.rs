//! Payload algebras for incremental view maintenance.
//!
//! Following the data model of the paper (Sec. 2), a relation maps tuples
//! (*keys*) to values (*payloads*) drawn from a ring `(D, +, *, 0, 1)`.
//! Inserts map tuples to positive ring values and deletes to negative ones,
//! which makes update batches commutative: the cumulative effect of a batch
//! is independent of execution order.
//!
//! This crate provides:
//!
//! * [`Semiring`] — the `(0, 1, +, *)` fragment, enough for insert-only
//!   maintenance and for monotone analytics (e.g. tropical semirings);
//! * [`Ring`] — adds additive inverses, required for deletes;
//! * concrete instances: the integer ring `Z` ([`i64`], [`i32`], [`i128`]),
//!   reals ([`F64`]), the Boolean semiring ([`BoolSemiring`]), tropical
//!   min-plus ([`MinPlus`]), product rings (tuples), and the degree-2
//!   covariance ring [`Covar`] used for in-database machine learning in
//!   F-IVM-style systems.
//!
//! The integer ring is the workhorse: payloads are tuple multiplicities,
//! an output tuple's multiplicity is its number of derivations, and a zero
//! multiplicity means "absent".

pub mod boolean;
pub mod covar;
pub mod numeric;
pub mod product;
pub mod semiring;
pub mod tropical;

pub use boolean::BoolSemiring;
pub use covar::Covar;
pub use numeric::F64;
pub use semiring::{Ring, Semiring};
pub use tropical::MinPlus;

/// Sum a stream of ring values. Convenience over `fold` with [`Semiring::plus`].
pub fn sum<R: Semiring>(items: impl IntoIterator<Item = R>) -> R {
    let mut acc = R::zero();
    for it in items {
        acc.add_assign(&it);
    }
    acc
}

/// Multiply a stream of ring values.
pub fn prod<R: Semiring>(items: impl IntoIterator<Item = R>) -> R {
    let mut acc = R::one();
    for it in items {
        acc = acc.times(&it);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_prod_over_integers() {
        assert_eq!(sum::<i64>([1, 2, 3]), 6);
        assert_eq!(prod::<i64>([2, 3, 4]), 24);
        assert_eq!(sum::<i64>(std::iter::empty()), 0);
        assert_eq!(prod::<i64>(std::iter::empty()), 1);
    }
}
