//! Product rings: component-wise combination of payload algebras.
//!
//! A product of (semi)rings is again a (semi)ring. Products let one view
//! tree maintain several aggregates at once — e.g. `(count, sum)` pairs for
//! AVG, or `(Z, Covar)` for multiplicity-aware model training.

use crate::semiring::{Ring, Semiring};

impl<A: Semiring, B: Semiring> Semiring for (A, B) {
    #[inline]
    fn zero() -> Self {
        (A::zero(), B::zero())
    }
    #[inline]
    fn one() -> Self {
        (A::one(), B::one())
    }
    #[inline]
    fn plus(&self, other: &Self) -> Self {
        (self.0.plus(&other.0), self.1.plus(&other.1))
    }
    #[inline]
    fn times(&self, other: &Self) -> Self {
        (self.0.times(&other.0), self.1.times(&other.1))
    }
    #[inline]
    fn is_zero(&self) -> bool {
        self.0.is_zero() && self.1.is_zero()
    }
    #[inline]
    fn add_assign(&mut self, other: &Self) {
        self.0.add_assign(&other.0);
        self.1.add_assign(&other.1);
    }
    #[inline]
    fn try_neg(&self) -> Option<Self> {
        Some((self.0.try_neg()?, self.1.try_neg()?))
    }
}

impl<A: Ring, B: Ring> Ring for (A, B) {
    #[inline]
    fn neg(&self) -> Self {
        (self.0.neg(), self.1.neg())
    }
}

impl<A: Semiring, B: Semiring, C: Semiring> Semiring for (A, B, C) {
    #[inline]
    fn zero() -> Self {
        (A::zero(), B::zero(), C::zero())
    }
    #[inline]
    fn one() -> Self {
        (A::one(), B::one(), C::one())
    }
    #[inline]
    fn plus(&self, other: &Self) -> Self {
        (
            self.0.plus(&other.0),
            self.1.plus(&other.1),
            self.2.plus(&other.2),
        )
    }
    #[inline]
    fn times(&self, other: &Self) -> Self {
        (
            self.0.times(&other.0),
            self.1.times(&other.1),
            self.2.times(&other.2),
        )
    }
    #[inline]
    fn is_zero(&self) -> bool {
        self.0.is_zero() && self.1.is_zero() && self.2.is_zero()
    }
    #[inline]
    fn add_assign(&mut self, other: &Self) {
        self.0.add_assign(&other.0);
        self.1.add_assign(&other.1);
        self.2.add_assign(&other.2);
    }
    #[inline]
    fn try_neg(&self) -> Option<Self> {
        Some((self.0.try_neg()?, self.1.try_neg()?, self.2.try_neg()?))
    }
}

impl<A: Ring, B: Ring, C: Ring> Ring for (A, B, C) {
    #[inline]
    fn neg(&self) -> Self {
        (self.0.neg(), self.1.neg(), self.2.neg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::F64;

    #[test]
    fn pair_ring_componentwise() {
        let a: (i64, F64) = (2, F64::new(1.5));
        let b: (i64, F64) = (3, F64::new(0.5));
        assert_eq!(a.plus(&b), (5, F64::new(2.0)));
        assert_eq!(a.times(&b), (6, F64::new(0.75)));
        assert_eq!(a.neg(), (-2, F64::new(-1.5)));
    }

    #[test]
    fn pair_zero_requires_both() {
        let half_zero: (i64, i64) = (0, 7);
        assert!(!half_zero.is_zero());
        assert!(<(i64, i64)>::zero().is_zero());
    }

    #[test]
    fn triple_ring_identity() {
        let x: (i64, i64, i64) = (1, 2, 3);
        assert_eq!(x.times(&Semiring::one()), x);
        assert_eq!(x.plus(&Semiring::zero()), x);
    }
}
