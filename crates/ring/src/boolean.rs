//! The Boolean semiring `({false, true}, ∨, ∧, false, true)`.
//!
//! Used for *detection*-style queries (e.g. the Boolean triangle query `Qb`
//! of Sec. 3.4) in the insert-only setting. It is not a ring — `true` has no
//! additive inverse — so insert-delete engines instead run over `Z` and test
//! `count > 0`, exactly as the paper does for triangle detection.

use crate::semiring::Semiring;

/// Boolean semiring element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct BoolSemiring(pub bool);

impl Semiring for BoolSemiring {
    #[inline]
    fn zero() -> Self {
        BoolSemiring(false)
    }
    #[inline]
    fn one() -> Self {
        BoolSemiring(true)
    }
    #[inline]
    fn plus(&self, other: &Self) -> Self {
        BoolSemiring(self.0 || other.0)
    }
    #[inline]
    fn times(&self, other: &Self) -> Self {
        BoolSemiring(self.0 && other.0)
    }
    #[inline]
    fn is_zero(&self) -> bool {
        !self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_table() {
        let t = BoolSemiring(true);
        let f = BoolSemiring(false);
        assert_eq!(t.plus(&f), t);
        assert_eq!(f.plus(&f), f);
        assert_eq!(t.times(&f), f);
        assert_eq!(t.times(&t), t);
    }

    #[test]
    fn identities() {
        let t = BoolSemiring(true);
        assert_eq!(t.plus(&BoolSemiring::zero()), t);
        assert_eq!(t.times(&BoolSemiring::one()), t);
        assert!(BoolSemiring::zero().is_zero());
    }

    #[test]
    fn plus_is_idempotent() {
        let t = BoolSemiring(true);
        assert_eq!(t.plus(&t), t);
    }
}
