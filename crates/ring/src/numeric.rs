//! Numeric ring instances: the integer ring `Z` and floating-point reals.

use crate::semiring::{Ring, Semiring};

macro_rules! int_ring {
    ($($t:ty),*) => {$(
        impl Semiring for $t {
            #[inline]
            fn zero() -> Self { 0 }
            #[inline]
            fn one() -> Self { 1 }
            #[inline]
            fn plus(&self, other: &Self) -> Self { self.wrapping_add(*other) }
            #[inline]
            fn times(&self, other: &Self) -> Self { self.wrapping_mul(*other) }
            #[inline]
            fn is_zero(&self) -> bool { *self == 0 }
            #[inline]
            fn add_assign(&mut self, other: &Self) { *self = self.wrapping_add(*other); }
            #[inline]
            fn try_neg(&self) -> Option<Self> { Some(self.wrapping_neg()) }
        }

        impl Ring for $t {
            #[inline]
            fn neg(&self) -> Self { self.wrapping_neg() }
        }
    )*};
}

// The ring of integers (Z, +, *, 0, 1): the standard multiplicity ring used
// by DBToaster and F-IVM. Wrapping arithmetic keeps the ring laws total;
// realistic multiplicities are nowhere near the i64 boundary.
int_ring!(i32, i64, i128);

/// `f64` wrapper forming the ring of reals.
///
/// A wrapper (rather than a blanket impl on `f64`) so that payload equality
/// is total: `NaN` is normalized to zero on construction, which keeps
/// `PartialEq`-based zero-pruning sound.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct F64(pub f64);

impl F64 {
    /// Wrap a float, normalizing `NaN` to `0.0`.
    #[inline]
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            F64(0.0)
        } else {
            F64(v)
        }
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64::new(v)
    }
}

impl Semiring for F64 {
    #[inline]
    fn zero() -> Self {
        F64(0.0)
    }
    #[inline]
    fn one() -> Self {
        F64(1.0)
    }
    #[inline]
    fn plus(&self, other: &Self) -> Self {
        F64::new(self.0 + other.0)
    }
    #[inline]
    fn times(&self, other: &Self) -> Self {
        F64::new(self.0 * other.0)
    }
    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == 0.0
    }
    #[inline]
    fn try_neg(&self) -> Option<Self> {
        Some(F64::new(-self.0))
    }
}

impl Ring for F64 {
    #[inline]
    fn neg(&self) -> Self {
        F64::new(-self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ring_basics() {
        assert_eq!(<i64 as Semiring>::zero(), 0);
        assert_eq!(<i64 as Semiring>::one(), 1);
        assert_eq!(2i64.plus(&3), 5);
        assert_eq!(2i64.times(&3), 6);
        assert_eq!(5i64.neg(), -5);
    }

    #[test]
    fn i128_ring_basics() {
        assert_eq!(3i128.times(&4).plus(&1), 13);
        assert_eq!((-7i128).neg(), 7);
    }

    #[test]
    fn f64_normalizes_nan() {
        assert_eq!(F64::new(f64::NAN), F64::zero());
        assert!(F64::new(0.0).is_zero());
    }

    #[test]
    fn f64_arith() {
        let a = F64::new(1.5);
        let b = F64::new(2.0);
        assert_eq!(a.plus(&b), F64::new(3.5));
        assert_eq!(a.times(&b), F64::new(3.0));
        assert_eq!(a.minus(&b), F64::new(-0.5));
    }

    #[test]
    fn wrapping_keeps_laws_total() {
        let big = i64::MAX;
        // Associativity survives overflow under wrapping semantics.
        assert_eq!(big.plus(&1).plus(&1), big.plus(&2));
    }
}
