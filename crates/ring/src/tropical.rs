//! The tropical min-plus semiring `(R ∪ {∞}, min, +, ∞, 0)`.
//!
//! Not used by the paper's core results (it is a semiring, not a ring), but
//! included to exercise the insert-only maintenance path (Sec. 4.6) with a
//! non-trivial, non-invertible payload algebra — e.g. cheapest-derivation
//! analytics over joins.

use crate::semiring::Semiring;

/// A min-plus semiring element; `MinPlus::zero()` is `+∞`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinPlus(pub f64);

impl MinPlus {
    /// A finite cost value (`NaN` is normalized to `+∞`).
    #[inline]
    pub fn cost(v: f64) -> Self {
        if v.is_nan() {
            MinPlus(f64::INFINITY)
        } else {
            MinPlus(v)
        }
    }
}

impl Semiring for MinPlus {
    #[inline]
    fn zero() -> Self {
        MinPlus(f64::INFINITY)
    }
    #[inline]
    fn one() -> Self {
        MinPlus(0.0)
    }
    #[inline]
    fn plus(&self, other: &Self) -> Self {
        MinPlus(self.0.min(other.0))
    }
    #[inline]
    fn times(&self, other: &Self) -> Self {
        MinPlus(self.0 + other.0)
    }
    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_plus_identities() {
        let a = MinPlus::cost(3.0);
        assert_eq!(a.plus(&MinPlus::zero()), a);
        assert_eq!(a.times(&MinPlus::one()), a);
        assert_eq!(a.times(&MinPlus::zero()), MinPlus::zero());
    }

    #[test]
    fn min_plus_combines() {
        let a = MinPlus::cost(3.0);
        let b = MinPlus::cost(5.0);
        assert_eq!(a.plus(&b), a); // min
        assert_eq!(a.times(&b), MinPlus::cost(8.0)); // sum of costs
    }

    #[test]
    fn nan_normalized() {
        assert!(MinPlus::cost(f64::NAN).is_zero());
    }
}
