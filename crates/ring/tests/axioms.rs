//! Property tests: ring/semiring laws for every payload algebra.
//!
//! Floating-point algebras are tested over integer-valued floats so the
//! laws hold exactly (f64 arithmetic on small integers is exact).

use ivm_ring::{BoolSemiring, Covar, MinPlus, Ring, Semiring, F64};
use proptest::prelude::*;

fn small_i64() -> impl Strategy<Value = i64> {
    -1000i64..1000
}

fn int_f64() -> impl Strategy<Value = F64> {
    (-100i32..100).prop_map(|v| F64::new(v as f64))
}

fn int_minplus() -> impl Strategy<Value = MinPlus> {
    prop_oneof![
        (-100i32..100).prop_map(|v| MinPlus::cost(v as f64)),
        Just(MinPlus::zero()),
    ]
}

fn small_covar() -> impl Strategy<Value = Covar<2>> {
    // Sums of lifted values with small integer features stay exact in f64.
    proptest::collection::vec((0usize..2, -4i32..4), 0..4).prop_map(|items| {
        let mut acc = Covar::<2>::zero();
        for (i, x) in items {
            acc.add_assign(&Covar::lift(i, x as f64));
        }
        acc
    })
}

macro_rules! semiring_laws {
    ($modname:ident, $strat:expr, $ty:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn add_commutative(a in $strat, b in $strat) {
                    prop_assert_eq!(a.plus(&b), b.plus(&a));
                }

                #[test]
                fn add_associative(a in $strat, b in $strat, c in $strat) {
                    prop_assert_eq!(a.plus(&b).plus(&c), a.plus(&b.plus(&c)));
                }

                #[test]
                fn add_identity(a in $strat) {
                    prop_assert_eq!(a.plus(&<$ty>::zero()), a);
                }

                #[test]
                fn mul_commutative(a in $strat, b in $strat) {
                    prop_assert_eq!(a.times(&b), b.times(&a));
                }

                #[test]
                fn mul_associative(a in $strat, b in $strat, c in $strat) {
                    prop_assert_eq!(a.times(&b).times(&c), a.times(&b.times(&c)));
                }

                #[test]
                fn mul_identity(a in $strat) {
                    prop_assert_eq!(a.times(&<$ty>::one()), a);
                }

                #[test]
                fn zero_annihilates(a in $strat) {
                    prop_assert!(a.times(&<$ty>::zero()).is_zero());
                }

                #[test]
                fn distributive(a in $strat, b in $strat, c in $strat) {
                    prop_assert_eq!(
                        a.times(&b.plus(&c)),
                        a.times(&b).plus(&a.times(&c))
                    );
                }

                #[test]
                fn add_assign_matches_plus(a in $strat, b in $strat) {
                    let mut x = a.clone();
                    x.add_assign(&b);
                    prop_assert_eq!(x, a.plus(&b));
                }
            }
        }
    };
}

macro_rules! ring_laws {
    ($modname:ident, $strat:expr, $ty:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn neg_is_additive_inverse(a in $strat) {
                    prop_assert!(a.plus(&a.neg()).is_zero());
                }

                #[test]
                fn double_neg(a in $strat) {
                    prop_assert_eq!(a.neg().neg(), a);
                }

                #[test]
                fn minus_self_is_zero(a in $strat) {
                    prop_assert!(a.minus(&a).is_zero());
                }

                #[test]
                fn neg_distributes_over_mul(a in $strat, b in $strat) {
                    prop_assert_eq!(a.neg().times(&b), a.times(&b).neg());
                }
            }
        }
    };
}

semiring_laws!(int_semiring, small_i64(), i64);
ring_laws!(int_ring, small_i64(), i64);

semiring_laws!(f64_semiring, int_f64(), F64);
ring_laws!(f64_ring, int_f64(), F64);

semiring_laws!(
    bool_semiring,
    any::<bool>().prop_map(BoolSemiring),
    BoolSemiring
);

semiring_laws!(minplus_semiring, int_minplus(), MinPlus);

semiring_laws!(covar_semiring, small_covar(), Covar<2>);
ring_laws!(covar_ring, small_covar(), Covar<2>);

semiring_laws!(pair_semiring, (small_i64(), int_f64()), (i64, F64));
ring_laws!(pair_ring, (small_i64(), int_f64()), (i64, F64));
