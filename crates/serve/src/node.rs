//! The serving node: shared base state, deduped engines, per-subscriber
//! delivery taps.

use crate::canon::canonical_key;
use ivm_core::{EngineError, Maintainer};
use ivm_data::{Database, FxHashMap, FxHashSet, Relation, Sym, Update};
use ivm_dataflow::{DeltaBatch, StoreHub};
use ivm_obs::{
    Counter, FlightRecorder, Gauge, Histogram, LabelId, MetricsRegistry, MetricsServer, Namespace,
    Tracer,
};
use ivm_query::Query;
use ivm_ring::Semiring;
use ivm_session::Session;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Instant;

/// Stable identifier of one subscription, assigned at
/// [`ServeNode::subscribe`] time and never reused.
pub type SubId = u64;

/// One epoch's changes to one maintained view, as delivered to a
/// subscriber: the consolidated output delta of the batch. An empty
/// delta is still delivered (exactly one `ViewDelta` per live
/// subscriber per epoch), so receivers can track epochs without gaps.
#[derive(Clone)]
pub struct ViewDelta<R> {
    /// The epoch (0-based [`ServeNode::apply_batch`] index) this delta
    /// belongs to.
    pub epoch: u64,
    /// The view's name — the `Query::name` of the group's first-
    /// registered query.
    pub view: Sym,
    /// The output delta: tuples over the query's free variables with
    /// their payload changes.
    pub delta: Relation<R>,
}

impl<R: Semiring> ViewDelta<R> {
    /// The delta repackaged as a one-relation [`DeltaBatch`] changeset,
    /// keyed by the view name — convenient for piping a subscription
    /// into downstream batch consumers.
    pub fn changes(&self) -> DeltaBatch<R> {
        let mut b = DeltaBatch::new();
        for (t, r) in self.delta.iter() {
            b.push(&Update::with_payload(self.view, t.clone(), r.clone()));
        }
        b
    }
}

/// A boxed subscriber callback (panic-isolated at delivery time).
type DeltaCallback<R> = Box<dyn FnMut(&ViewDelta<R>)>;

/// Where a tap's deliveries go.
enum Sink<R> {
    /// Synchronous callback, panic-isolated: a panic evicts the
    /// subscriber, never the node.
    Callback(DeltaCallback<R>),
    /// Channel to a [`Subscription`]; a dropped receiver evicts the
    /// subscriber on the next delivery.
    Channel(mpsc::Sender<ViewDelta<R>>),
    /// Bounded channel to a [`Subscription`]: a full queue — the
    /// subscriber fell `capacity` epochs behind — evicts it instead of
    /// letting its backlog grow without bound (back-pressure by
    /// eviction; the node never blocks on a slow consumer).
    Bounded(mpsc::SyncSender<ViewDelta<R>>),
}

/// One subscriber's delivery endpoint inside a group.
struct Tap<R> {
    id: SubId,
    sink: Sink<R>,
    /// Always allocated (an `Arc`'d atomic) so history survives a later
    /// [`ServeNode::observe`] backfill.
    notify_ns: Histogram,
    queue_depth: Gauge,
}

impl<R: Semiring> Tap<R> {
    /// Deliver one epoch's delta. `false` means the subscriber is dead
    /// (callback panicked or receiver dropped) and must be evicted.
    fn deliver(&mut self, vd: &ViewDelta<R>) -> bool {
        match &mut self.sink {
            Sink::Callback(cb) => catch_unwind(AssertUnwindSafe(|| cb(vd))).is_ok(),
            Sink::Channel(tx) => {
                if tx.send(vd.clone()).is_ok() {
                    self.queue_depth.inc();
                    true
                } else {
                    false
                }
            }
            // Never blocks: a full queue (Err(Full)) reports the
            // subscriber dead the same way a dropped receiver does, and
            // the shared eviction path handles both.
            Sink::Bounded(tx) => {
                if tx.try_send(vd.clone()).is_ok() {
                    self.queue_depth.inc();
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// One deduped engine and the taps riding it.
struct Group<R: Semiring> {
    /// The canonical key this group is registered under in the dedup map.
    key: String,
    session: Session<R>,
    /// The view name deliveries carry (first-registered query's name).
    view: Sym,
    /// Dynamic relations the engine consumes — the per-group stream
    /// filter.
    rels: FxHashSet<Sym>,
    taps: Vec<Tap<R>>,
}

/// The receiving end of a channel-backed subscription (see
/// [`ServeNode::subscribe`]). Dropping it evicts the subscriber at its
/// next delivery.
pub struct Subscription<R> {
    id: SubId,
    rx: mpsc::Receiver<ViewDelta<R>>,
    queue_depth: Gauge,
}

impl<R: Semiring> Subscription<R> {
    /// The stable subscription id (pass to [`ServeNode::unsubscribe`],
    /// [`ServeNode::view`]).
    pub fn id(&self) -> SubId {
        self.id
    }

    /// The next pending delivery, if any. Never blocks.
    pub fn try_next(&mut self) -> Option<ViewDelta<R>> {
        let vd = self.rx.try_recv().ok()?;
        self.queue_depth.dec();
        Some(vd)
    }

    /// Drain every pending delivery, in epoch order.
    pub fn drain_pending(&mut self) -> Vec<ViewDelta<R>> {
        let mut out = Vec::new();
        while let Some(vd) = self.try_next() {
            out.push(vd);
        }
        out
    }
}

/// Node-level metric handles (see the crate docs for the namespace).
struct ServeObs {
    registry: MetricsRegistry,
    ns: Namespace,
    subscribers: Gauge,
    groups: Gauge,
    epochs: Counter,
    ingest_ns: Histogram,
    dedup_hits: Counter,
    store_dedup_hits: Counter,
    evictions: Counter,
    /// The registry's trace ring: each ingest opens a `serve.ingest`
    /// root span at the node's epoch, with per-group propagation,
    /// per-subscriber notify, and the hub advance as child stages — the
    /// raw material for [`ivm_obs::EpochWaterfall`].
    tracer: Tracer,
    root_label: LabelId,
    group_label: LabelId,
    notify_label: LabelId,
    advance_label: LabelId,
    /// Post-mortem writer: a subscriber eviction dumps the last few
    /// epochs of spans plus a full snapshot as one JSON document.
    flight: FlightRecorder,
}

impl ServeObs {
    /// Publish a tap's pre-allocated handles under its stable id.
    fn register_tap(&self, tap: &Tap<impl Semiring>) {
        let sub = self.ns.indexed("sub", tap.id);
        self.registry
            .register_histogram(&sub.metric("notify_ns"), &tap.notify_ns);
        self.registry
            .register_gauge(&sub.metric("queue_depth"), &tap.queue_depth);
    }
}

/// One shared ingest stream fanned out to many live views. See the
/// crate docs for the dedup rule, the delivery/ordering guarantees, and
/// the metric namespace.
pub struct ServeNode<R: Semiring> {
    /// The single authoritative base state; relations are created on
    /// first mention by a subscriber's query and persist thereafter.
    base: Database<R>,
    /// Shared multiway trie stores across member engines.
    hub: StoreHub<R>,
    /// Deduped engines, iterated in creation order (delivery order).
    groups: BTreeMap<u64, Group<R>>,
    /// canonical key → group id.
    key_map: FxHashMap<String, u64>,
    /// subscription id → group id.
    sub_group: FxHashMap<SubId, u64>,
    next_group: u64,
    next_sub: SubId,
    epoch: u64,
    obs: Option<ServeObs>,
    /// The live scrape endpoint from [`ServeNode::serve_metrics`]; held
    /// here so the server dies with the node.
    metrics_server: Option<MetricsServer>,
}

impl<R: Semiring> ServeNode<R> {
    /// An empty node: no base tuples, no subscribers.
    pub fn new() -> Self {
        ServeNode {
            base: Database::new(),
            hub: StoreHub::new(),
            groups: BTreeMap::new(),
            key_map: FxHashMap::default(),
            sub_group: FxHashMap::default(),
            next_group: 0,
            next_sub: 0,
            epoch: 0,
            obs: None,
            metrics_server: None,
        }
    }

    /// Expose the attached registry over HTTP while the node lives: a
    /// dependency-free scrape endpoint bound to `addr` (use port 0 to
    /// let the OS pick; the bound address is returned). Serves
    /// `/metrics` (Prometheus text), `/snapshot.json`, and
    /// `/epochs.json` (recent per-epoch latency waterfalls). Requires a
    /// prior [`ServeNode::observe`].
    pub fn serve_metrics(&mut self, addr: &str) -> Result<SocketAddr, EngineError> {
        let Some(o) = &self.obs else {
            return Err(EngineError::NotSupported(
                "serve_metrics exposes the attached registry over HTTP, but \
                 no registry is attached; call observe(...) first"
                    .into(),
            ));
        };
        let server = MetricsServer::start(addr, &o.registry).map_err(|e| {
            EngineError::NotSupported(format!("serve_metrics({addr:?}) failed to bind: {e}"))
        })?;
        let bound = server.addr();
        self.metrics_server = Some(server);
        Ok(bound)
    }

    /// Attach a metrics registry. Node-level gauges snap to the current
    /// truth immediately; per-subscriber handles allocated before this
    /// call are backfilled with their history intact (they are shared
    /// atomics, not new series).
    pub fn observe(&mut self, registry: &MetricsRegistry) {
        let ns = Namespace::new("ivm").child("serve");
        let tracer = registry.tracer().clone();
        let obs = ServeObs {
            registry: registry.clone(),
            subscribers: ns.gauge(registry, "subscribers"),
            groups: ns.gauge(registry, "groups"),
            epochs: ns.counter(registry, "epochs"),
            ingest_ns: ns.histogram(registry, "ingest_ns"),
            dedup_hits: ns.counter(registry, "dedup_hits"),
            store_dedup_hits: ns.counter(registry, "store_dedup_hits"),
            evictions: ns.counter(registry, "evictions"),
            ns,
            root_label: tracer.intern("serve.ingest"),
            group_label: tracer.intern("serve.group_apply"),
            notify_label: tracer.intern("serve.notify"),
            advance_label: tracer.intern("hub.advance"),
            tracer,
            flight: FlightRecorder::new(registry),
        };
        obs.subscribers.set(self.subscriber_count() as i64);
        obs.groups.set(self.group_count() as i64);
        for g in self.groups.values() {
            for tap in &g.taps {
                obs.register_tap(tap);
            }
        }
        self.obs = Some(obs);
    }

    /// Subscribe with a channel: deliveries buffer in the returned
    /// [`Subscription`] until drained. Dropping the subscription evicts
    /// the subscriber at its next delivery.
    pub fn subscribe(&mut self, query: Query) -> Result<Subscription<R>, EngineError> {
        let (tx, rx) = mpsc::channel();
        let id = self.add_tap(query, Sink::Channel(tx))?;
        let gid = self.sub_group[&id];
        let group = &self.groups[&gid];
        let tap = group.taps.iter().find(|t| t.id == id).expect("just added");
        Ok(Subscription {
            id,
            rx,
            queue_depth: tap.queue_depth.clone(),
        })
    }

    /// [`ServeNode::subscribe`] with a bounded queue: at most `capacity`
    /// undrained deliveries (clamped to ≥ 1) may accumulate in the
    /// returned [`Subscription`]. A subscriber that falls further behind
    /// is **evicted** at the next delivery — through the same path a
    /// dropped receiver takes (its `sub{id}.queue_depth` gauge settles to
    /// 0, its series are pruned, the eviction counter and flight-recorder
    /// post-mortem fire) — so one slow consumer can neither block ingest
    /// nor grow an unbounded backlog.
    pub fn subscribe_bounded(
        &mut self,
        query: Query,
        capacity: usize,
    ) -> Result<Subscription<R>, EngineError> {
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        let id = self.add_tap(query, Sink::Bounded(tx))?;
        let gid = self.sub_group[&id];
        let group = &self.groups[&gid];
        let tap = group.taps.iter().find(|t| t.id == id).expect("just added");
        Ok(Subscription {
            id,
            rx,
            queue_depth: tap.queue_depth.clone(),
        })
    }

    /// Subscribe with a synchronous callback, invoked once per epoch
    /// with the view's delta. A panicking callback evicts only this
    /// subscriber — ingest and sibling views are unaffected.
    pub fn subscribe_with(
        &mut self,
        query: Query,
        callback: impl FnMut(&ViewDelta<R>) + 'static,
    ) -> Result<SubId, EngineError> {
        self.add_tap(query, Sink::Callback(Box::new(callback)))
    }

    fn add_tap(&mut self, query: Query, sink: Sink<R>) -> Result<SubId, EngineError> {
        let gid = self.group_for(query)?;
        let id = self.next_sub;
        self.next_sub += 1;
        let tap = Tap {
            id,
            sink,
            notify_ns: Histogram::default(),
            queue_depth: Gauge::default(),
        };
        if let Some(o) = &self.obs {
            o.register_tap(&tap);
            o.subscribers.inc();
        }
        self.groups
            .get_mut(&gid)
            .expect("group exists")
            .taps
            .push(tap);
        self.sub_group.insert(id, gid);
        Ok(id)
    }

    /// Find or build the engine group maintaining `query`'s view.
    fn group_for(&mut self, query: Query) -> Result<u64, EngineError> {
        let key = canonical_key(&query);
        if let Some(&gid) = self.key_map.get(&key) {
            if let Some(o) = &self.obs {
                o.dedup_hits.inc();
            }
            return Ok(gid);
        }
        // First mention of a relation defines it in the shared base, so
        // later subscribers (and the update stream) see one authoritative
        // copy.
        for atom in &query.atoms {
            if self.base.get(atom.name).is_none() {
                self.base.create(atom.name, atom.schema.clone());
            }
        }
        let view = query.name;
        let rels: FxHashSet<Sym> = query
            .atoms
            .iter()
            .filter(|a| a.dynamic)
            .map(|a| a.name)
            .collect();
        let session = Session::builder(query)
            .shared_stores(&self.hub)
            .build(&self.base)?;
        if let Some(o) = &self.obs {
            o.store_dedup_hits.add(session.shared_store_hits() as u64);
            o.groups.inc();
        }
        let gid = self.next_group;
        self.next_group += 1;
        self.groups.insert(
            gid,
            Group {
                key: key.clone(),
                session,
                view,
                rels,
                taps: Vec::new(),
            },
        );
        self.key_map.insert(key, gid);
        Ok(gid)
    }

    /// Drop subscription `id`. Returns `false` if it was already gone
    /// (unsubscribed, or evicted after a delivery failure). The last
    /// tap leaving a group retires the group's engine.
    pub fn unsubscribe(&mut self, id: SubId) -> bool {
        let Some(gid) = self.sub_group.remove(&id) else {
            return false;
        };
        let group = self.groups.get_mut(&gid).expect("group exists");
        group.taps.retain(|t| t.id != id);
        if let Some(o) = &self.obs {
            o.subscribers.dec();
            // A deliberate unsubscribe retires the series immediately —
            // same rule as eviction, no post-mortem needed.
            o.registry
                .prune_prefix(&format!("{}.", o.ns.indexed("sub", id)));
        }
        if group.taps.is_empty() {
            let group = self.groups.remove(&gid).expect("group exists");
            self.key_map.remove(&group.key);
            if let Some(o) = &self.obs {
                o.groups.dec();
            }
        }
        true
    }

    /// Ingest one batch: advance the shared base, propagate through
    /// every engine group, deliver one [`ViewDelta`] per live
    /// subscriber, evict dead subscribers, then advance the shared
    /// store hub — exactly once, after all members (the coordinator
    /// half of the [`StoreHub`] protocol).
    ///
    /// Rejection is atomic: every update must target a relation some
    /// subscriber's query has declared, or the whole batch is refused
    /// with [`EngineError::UnknownRelation`] before anything advances.
    pub fn apply_batch(&mut self, batch: &[Update<R>]) -> Result<(), EngineError> {
        for u in batch {
            if self.base.get(u.relation).is_none() {
                return Err(EngineError::UnknownRelation(u.relation));
            }
        }
        let t0 = self.obs.as_ref().map(|_| Instant::now());
        // The epoch's root span: every stage below — group propagation,
        // per-subscriber notify, the hub advance — attaches under it, so
        // the trace ring can reconstruct this epoch's latency waterfall.
        let root = self
            .obs
            .as_ref()
            .map(|o| o.tracer.enter(o.root_label, self.epoch));
        self.base.apply_batch(batch);
        let epoch = self.epoch;
        let mut evicted: Vec<SubId> = Vec::new();
        for group in self.groups.values_mut() {
            let sub_batch: Vec<Update<R>> = batch
                .iter()
                .filter(|u| group.rels.contains(&u.relation))
                .cloned()
                .collect();
            let apply_span = self
                .obs
                .as_ref()
                .and_then(|o| o.tracer.child_span(o.group_label));
            // Filtered to the query's own dynamic relations, this cannot
            // be rejected; a propagation error would still surface here.
            let delta = group.session.apply_batch(&sub_batch)?;
            drop(apply_span);
            let vd = ViewDelta {
                epoch,
                view: group.view,
                delta,
            };
            group.taps.retain_mut(|tap| {
                let t_notify = Instant::now();
                let alive = tap.deliver(&vd);
                let el = t_notify.elapsed();
                tap.notify_ns.record_duration(el);
                if let (Some(o), Some(r)) = (&self.obs, &root) {
                    o.tracer
                        .record_at(o.notify_label, Some(r.id()), r.epoch(), t_notify, el);
                }
                if !alive {
                    // The endpoint is gone, and with it its queue: the
                    // depth gauge settles to the truth.
                    tap.queue_depth.set(0);
                    evicted.push(tap.id);
                }
                alive
            });
        }
        // Dead subscribers are gone; their bookkeeping follows.
        if !evicted.is_empty() {
            let live: FxHashSet<SubId> = self
                .groups
                .values()
                .flat_map(|g| g.taps.iter().map(|t| t.id))
                .collect();
            self.sub_group.retain(|id, _| live.contains(id));
            let empty: Vec<u64> = self
                .groups
                .iter()
                .filter(|(_, g)| g.taps.is_empty())
                .map(|(&gid, _)| gid)
                .collect();
            for gid in empty {
                let group = self.groups.remove(&gid).expect("group exists");
                self.key_map.remove(&group.key);
            }
        }
        // The hub advances LAST: every member engine searched this
        // epoch against the pre-batch shared stores above.
        let advance_span = self
            .obs
            .as_ref()
            .and_then(|o| o.tracer.child_span(o.advance_label));
        self.hub.advance_batch(&DeltaBatch::from_updates(batch));
        drop(advance_span);
        self.epoch += 1;
        if let (Some(o), Some(t0)) = (&self.obs, t0) {
            let elapsed = t0.elapsed();
            o.epochs.inc();
            // Histogram and root span log the same elapsed, so waterfall
            // totals and `ingest_ns` observations agree exactly.
            o.ingest_ns.record_duration(elapsed);
            if let Some(root) = root {
                root.finish_with(elapsed);
            }
            o.evictions.add(evicted.len() as u64);
            o.subscribers.set(self.subscriber_count() as i64);
            o.groups.set(self.group_count() as i64);
            if !evicted.is_empty() {
                // Post-mortem first (the snapshot still holds the dead
                // subscribers' final series, and the root span above is
                // already in the ring so the dump's waterfalls include
                // the eviction epoch) — then drop their series so the
                // exports stop carrying dead `sub{id}` forever.
                let ids: Vec<String> = evicted.iter().map(|id| id.to_string()).collect();
                o.flight.dump(
                    "subscriber-eviction",
                    &format!("sub(s) {} evicted at epoch {epoch}", ids.join(",")),
                );
                for &id in &evicted {
                    o.registry
                        .prune_prefix(&format!("{}.", o.ns.indexed("sub", id)));
                }
            }
        }
        Ok(())
    }

    /// A snapshot of subscription `id`'s full maintained view (tuples
    /// over the query's free variables). `None` if the subscription is
    /// gone.
    pub fn view(&mut self, id: SubId) -> Option<Relation<R>> {
        let gid = *self.sub_group.get(&id)?;
        let group = self.groups.get_mut(&gid)?;
        let schema = group.session.query().free.clone();
        let mut rel = Relation::new(schema);
        group.session.for_each_output(&mut |t, r| {
            rel.apply(t.clone(), r);
        });
        Some(rel)
    }

    /// Live subscribers across all groups.
    pub fn subscriber_count(&self) -> usize {
        self.groups.values().map(|g| g.taps.len()).sum()
    }

    /// Live deduped engine groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Batches ingested so far (the next delivery's epoch number).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether subscription `id` is still live.
    pub fn is_subscribed(&self, id: SubId) -> bool {
        self.sub_group.contains_key(&id)
    }

    /// Node-wide resident-tuple census: the shared base, the shared
    /// store hub (each shared relation once), and every group engine's
    /// privately owned state. The headline number the serving layer
    /// exists to shrink versus N independent sessions.
    pub fn resident_tuples(&self) -> usize {
        self.base.size()
            + self.hub.stored_tuples()
            + self
                .groups
                .values()
                .map(|g| g.session.resident_tuples().unwrap_or(0))
                .sum::<usize>()
    }
}

impl<R: Semiring> Default for ServeNode<R> {
    fn default() -> Self {
        ServeNode::new()
    }
}
