//! Reactive subscription fabric: one ingest stream, many live views.
//!
//! Every [`Session`](ivm_session::Session) owns a private engine and a
//! private copy of the base state, so N dashboard users over the same
//! update stream cost N redundant engines. This crate is the serving
//! layer the paper's framing points at — IVM as maintaining *many* views
//! over *one* update stream: a [`ServeNode`] owns one shared base
//! database and one ingest path, and subscribers register queries
//! against it with [`ServeNode::subscribe`]. Internally:
//!
//! - **Query dedup** — queries are canonicalized up to variable renaming
//!   and atom reordering ([`canonical_key`]); subscribers whose queries
//!   canonicalize identically share one maintained engine, each getting
//!   a private delivery tap. Canonicalization is conservative: a missed
//!   equivalence costs an extra engine, never a wrong answer.
//! - **Shared trie stores** — where deduped engines still overlap on a
//!   base relation (different queries, same feed), their
//!   worst-case-optimal multiway stores are shared through an
//!   [`ivm_dataflow::StoreHub`]: the relation is resident once
//!   node-wide, and the node advances the hub exactly once per batch
//!   after every member engine has processed it.
//! - **Fan-out delivery** — each [`ServeNode::apply_batch`] pushes
//!   exactly one [`ViewDelta`] (possibly empty) to every live
//!   subscriber, through a callback or a channel.
//!
//! # Delivery and ordering guarantees
//!
//! - Per epoch (one `apply_batch` call), every live subscriber receives
//!   exactly one [`ViewDelta`] carrying the epoch number — empty deltas
//!   included, so subscribers can count epochs without gaps.
//! - Groups are notified in group-creation order, and taps within a
//!   group in subscription order; deliveries never interleave within an
//!   epoch.
//! - A subscriber sees exactly the view and per-batch deltas an
//!   independent `Session` over the same (filtered) stream would
//!   produce. Column *order* is the query's free-variable order; column
//!   *names* are those of the group's first-registered query (dedup
//!   identifies views up to variable renaming).
//! - Subscribers are isolated: a panicking callback or a dropped
//!   channel receiver evicts that subscriber at the current epoch and
//!   never stalls ingest or perturbs sibling views.
//! - A subscriber registered mid-stream starts from the node's current
//!   base state (snapshot via [`ServeNode::view`]) and receives deltas
//!   from the next epoch on.
//!
//! # The `ivm.serve.*` metric namespace
//!
//! With a registry attached ([`ServeNode::observe`]):
//!
//! | series | kind | meaning |
//! |---|---|---|
//! | `ivm.serve.subscribers` | gauge | live subscriber count |
//! | `ivm.serve.groups` | gauge | live deduped engine count |
//! | `ivm.serve.epochs` | counter | batches fanned out |
//! | `ivm.serve.ingest_ns` | histogram | whole-epoch latency |
//! | `ivm.serve.dedup_hits` | counter | subscriptions attached to an existing engine |
//! | `ivm.serve.store_dedup_hits` | counter | multiway stores adopted from the hub |
//! | `ivm.serve.evictions` | counter | subscribers dropped after a delivery failure |
//! | `ivm.serve.sub{id}.notify_ns` | histogram | per-subscriber delivery latency |
//! | `ivm.serve.sub{id}.queue_depth` | gauge | per-subscriber undrained deliveries |
//!
//! Per-subscriber series use the stable subscription id, not the
//! position, so identities survive churn; handles allocated before
//! `observe` are backfilled with their history intact. When a
//! subscriber leaves — unsubscribed or evicted — its `sub{id}.*`
//! series are **pruned** from the registry (an eviction first dumps a
//! flight-recorder post-mortem with the final snapshot and the recent
//! epochs' spans), so exports never accumulate dead series under
//! churn. Each `apply_batch` also records a causal span tree — a
//! `serve.ingest` root with per-group apply, per-subscriber notify,
//! and the hub advance as children — reconstructible per epoch via
//! [`ivm_obs::EpochWaterfall`], and [`ServeNode::serve_metrics`]
//! exposes the whole registry over a live HTTP scrape endpoint.
//!
//! # Quickstart
//!
//! ```
//! use ivm_data::{sym, tup, vars, Update};
//! use ivm_query::{Atom, Query};
//! use ivm_serve::ServeNode;
//!
//! let [a, b, c] = vars(["svdoc_A", "svdoc_B", "svdoc_C"]);
//! let e = sym("svdoc_E");
//! let tri = |name: &str| {
//!     Query::new(
//!         name,
//!         [],
//!         vec![Atom::new(e, [a, b]), Atom::new(e, [b, c]), Atom::new(e, [c, a])],
//!     )
//! };
//!
//! let mut node = ServeNode::<i64>::new();
//! let mut sub1 = node.subscribe(tri("svdoc_q1")).unwrap();
//! let mut sub2 = node.subscribe(tri("svdoc_q2")).unwrap(); // deduped: same engine
//! assert_eq!(node.group_count(), 1);
//!
//! let batch: Vec<Update<i64>> = [(1i64, 2i64), (2, 3), (3, 1)]
//!     .into_iter()
//!     .map(|(x, y)| Update::insert(e, tup![x, y]))
//!     .collect();
//! node.apply_batch(&batch).unwrap();
//!
//! let d1 = sub1.try_next().unwrap();
//! let d2 = sub2.try_next().unwrap();
//! assert_eq!(d1.delta.get(&ivm_data::Tuple::empty()), 3); // three rotations
//! assert_eq!(d1.epoch, d2.epoch);
//! ```

mod canon;
mod node;

pub use canon::canonical_key;
pub use node::{ServeNode, SubId, Subscription, ViewDelta};
