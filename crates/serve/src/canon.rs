//! Query canonicalization for subscription dedup.
//!
//! Two subscribers whose queries differ only by variable names and atom
//! order maintain literally the same view, so they should share one
//! engine. [`canonical_key`] renders a query into a string that is
//! invariant under those two transformations: equal keys guarantee the
//! queries are identical up to a variable bijection (same relation
//! names, same dynamism, same free-variable order, same access-pattern
//! positions), so sharing is always sound. The converse is best-effort —
//! a rare missed equivalence yields two keys and two engines, which
//! costs memory, never correctness.
//!
//! The algorithm is a greedy canonical labelling: free variables are
//! pinned by their output position (`f0, f1, …` — free order is part of
//! the view, so it must match exactly), then atoms are emitted smallest-
//! rendering-first, naming bound variables `b0, b1, …` in order of first
//! appearance. Greedy labelling can in principle pick a non-minimal
//! form on highly symmetric self-joins, but it picks *deterministically*
//! given the input order of equal-rendering atoms, and any two queries
//! that reach the same key are isomorphic regardless.

use ivm_data::FxHashMap;
use ivm_query::Query;

/// A candidate atom rendering: the rendered string, its index into the
/// remaining-atoms list, and the bound-variable names it would commit.
type Candidate = (String, usize, Vec<(ivm_data::Sym, String)>);

/// The dedup key of `q`: equal keys ⟹ the queries are identical up to
/// renaming bound variables (see module docs for exactly what is
/// normalized). The query's *name* is ignored — it is diagnostic only.
pub fn canonical_key(q: &Query) -> String {
    let mut names: FxHashMap<ivm_data::Sym, String> = FxHashMap::default();
    for (i, &v) in q.free.vars().iter().enumerate() {
        names.insert(v, format!("f{i}"));
    }
    // Access-pattern split: which free positions are input variables.
    let input_pos: Vec<usize> = q
        .input
        .vars()
        .iter()
        .map(|&v| q.free.position(v).expect("input ⊆ free"))
        .collect();

    let mut remaining: Vec<usize> = (0..q.atoms.len()).collect();
    let mut parts: Vec<String> = Vec::with_capacity(q.atoms.len());
    let mut bound_counter = 0usize;
    while !remaining.is_empty() {
        // Render every remaining atom, tentatively naming its still-
        // unnamed variables in column order, and commit the smallest.
        let mut best: Option<Candidate> = None;
        for (ri, &ai) in remaining.iter().enumerate() {
            let atom = &q.atoms[ai];
            let mut tentative: Vec<(ivm_data::Sym, String)> = Vec::new();
            let cols: Vec<String> = atom
                .schema
                .vars()
                .iter()
                .map(|&v| {
                    if let Some(n) = names.get(&v) {
                        n.clone()
                    } else if let Some((_, n)) = tentative.iter().find(|(s, _)| *s == v) {
                        n.clone()
                    } else {
                        let n = format!("b{}", bound_counter + tentative.len());
                        tentative.push((v, n.clone()));
                        n
                    }
                })
                .collect();
            let rendering = format!(
                "{}{}({})",
                atom.name,
                if atom.dynamic { "" } else { "!" },
                cols.join(",")
            );
            if best.as_ref().is_none_or(|(b, _, _)| rendering < *b) {
                best = Some((rendering, ri, tentative));
            }
        }
        let (rendering, ri, tentative) = best.expect("remaining is non-empty");
        bound_counter += tentative.len();
        names.extend(tentative);
        parts.push(rendering);
        remaining.remove(ri);
    }
    format!(
        "free{};in{:?};{}",
        q.free.arity(),
        input_pos,
        parts.join("*")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::{sym, vars};
    use ivm_query::Atom;

    #[test]
    fn renamed_and_permuted_triangle_dedups() {
        let e = sym("cn_E");
        let [a, b, c] = vars(["cn_A", "cn_B", "cn_C"]);
        let [x, y, z] = vars(["cn_X", "cn_Y", "cn_Z"]);
        let q1 = Query::new(
            "cn_t1",
            [],
            vec![
                Atom::new(e, [a, b]),
                Atom::new(e, [b, c]),
                Atom::new(e, [c, a]),
            ],
        );
        // Renamed variables AND rotated atom order.
        let q2 = Query::new(
            "cn_t2",
            [],
            vec![
                Atom::new(e, [y, z]),
                Atom::new(e, [z, x]),
                Atom::new(e, [x, y]),
            ],
        );
        assert_eq!(canonical_key(&q1), canonical_key(&q2));
    }

    #[test]
    fn free_order_is_part_of_the_view() {
        let (r, _) = (sym("cn_R"), ());
        let [a, b] = vars(["cn_FA", "cn_FB"]);
        let q1 = Query::new("cn_f1", [a, b], vec![Atom::new(r, [a, b])]);
        let q2 = Query::new("cn_f2", [b, a], vec![Atom::new(r, [a, b])]);
        // Q(a,b)=R(a,b) and Q(b,a)=R(a,b) produce column-swapped views:
        // they must NOT share an engine.
        assert_ne!(canonical_key(&q1), canonical_key(&q2));
        // But renaming both variables consistently is invisible.
        let [x, y] = vars(["cn_FX", "cn_FY"]);
        let q3 = Query::new("cn_f3", [x, y], vec![Atom::new(r, [x, y])]);
        assert_eq!(canonical_key(&q1), canonical_key(&q3));
    }

    #[test]
    fn relation_names_and_dynamism_distinguish() {
        let (r, s) = (sym("cn_DR"), sym("cn_DS"));
        let [a, b] = vars(["cn_DA", "cn_DB"]);
        let q1 = Query::new("cn_d1", [a], vec![Atom::new(r, [a, b])]);
        let q2 = Query::new("cn_d2", [a], vec![Atom::new(s, [a, b])]);
        assert_ne!(canonical_key(&q1), canonical_key(&q2));
        let q3 = Query::new("cn_d3", [a], vec![Atom::new_static(r, [a, b])]);
        assert_ne!(canonical_key(&q1), canonical_key(&q3));
    }

    #[test]
    fn access_pattern_positions_distinguish() {
        let r = sym("cn_PR");
        let [a, b] = vars(["cn_PA", "cn_PB"]);
        let plain = Query::new("cn_p1", [a, b], vec![Atom::new(r, [a, b])]);
        let cqap = Query::with_access_pattern("cn_p2", [a], [b], vec![Atom::new(r, [a, b])]);
        assert_ne!(canonical_key(&plain), canonical_key(&cqap));
    }

    #[test]
    fn bound_variable_names_are_invisible() {
        let (r, s) = (sym("cn_BR"), sym("cn_BS"));
        let [a, b, b2] = vars(["cn_BA", "cn_BB", "cn_BB2"]);
        let q1 = Query::new("cn_b1", [a], vec![Atom::new(r, [a, b]), Atom::new(s, [b])]);
        let q2 = Query::new(
            "cn_b2",
            [a],
            vec![Atom::new(s, [b2]), Atom::new(r, [a, b2])],
        );
        assert_eq!(canonical_key(&q1), canonical_key(&q2));
    }
}
