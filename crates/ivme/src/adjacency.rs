//! Two-column `u64` relations with forward/backward adjacency indexes and
//! degree tracking — the storage layer of the IVMε kernels.

use ivm_data::FxHashMap;

/// A binary relation over `u64` keys with `i64` multiplicities, indexed in
/// both directions.
///
/// `fwd[x][y]` and `bwd[y][x]` always mirror each other; zero
/// multiplicities are pruned so `deg_fwd(x) = |σ_{first=x}|` matches the
/// paper's degree notion.
#[derive(Clone, Debug, Default)]
pub struct Adjacency {
    fwd: FxHashMap<u64, FxHashMap<u64, i64>>,
    bwd: FxHashMap<u64, FxHashMap<u64, i64>>,
    len: usize,
}

impl Adjacency {
    /// Empty relation.
    pub fn new() -> Self {
        Adjacency::default()
    }

    /// Number of tuples with non-zero multiplicity.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Multiplicity of `(x, y)`.
    #[inline]
    pub fn get(&self, x: u64, y: u64) -> i64 {
        self.fwd
            .get(&x)
            .and_then(|m| m.get(&y))
            .copied()
            .unwrap_or(0)
    }

    /// Add `m` to the multiplicity of `(x, y)`; returns the new degree of
    /// `x` (distinct `y` partners).
    pub fn apply(&mut self, x: u64, y: u64, m: i64) -> usize {
        if m != 0 {
            let delta = apply_one(&mut self.fwd, x, y, m);
            apply_one(&mut self.bwd, y, x, m);
            self.len = self.len.checked_add_signed(delta).expect("len underflow");
        }
        self.deg_fwd(x)
    }

    /// Distinct partners of `x` in the first column.
    #[inline]
    pub fn deg_fwd(&self, x: u64) -> usize {
        self.fwd.get(&x).map_or(0, |m| m.len())
    }

    /// Distinct partners of `y` in the second column.
    #[inline]
    pub fn deg_bwd(&self, y: u64) -> usize {
        self.bwd.get(&y).map_or(0, |m| m.len())
    }

    /// Iterate `(y, m)` partners of `x`.
    pub fn row(&self, x: u64) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.fwd
            .get(&x)
            .into_iter()
            .flatten()
            .map(|(&y, &m)| (y, m))
    }

    /// Iterate `(x, m)` partners of `y` (reverse direction).
    pub fn col(&self, y: u64) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.bwd
            .get(&y)
            .into_iter()
            .flatten()
            .map(|(&x, &m)| (x, m))
    }

    /// Iterate all `(x, y, m)` tuples.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, i64)> + '_ {
        self.fwd
            .iter()
            .flat_map(|(&x, row)| row.iter().map(move |(&y, &m)| (x, y, m)))
    }

    /// Iterate the distinct first-column values.
    pub fn keys_fwd(&self) -> impl Iterator<Item = u64> + '_ {
        self.fwd.keys().copied()
    }
}

/// Returns the tuple-count delta (+1 new tuple, −1 pruned, 0 otherwise).
fn apply_one(map: &mut FxHashMap<u64, FxHashMap<u64, i64>>, x: u64, y: u64, m: i64) -> isize {
    let row = map.entry(x).or_default();
    let e = row.entry(y).or_insert(0);
    let was_zero = *e == 0;
    *e += m;

    if *e == 0 {
        row.remove(&y);
        if row.is_empty() {
            map.remove(&x);
        }
        if was_zero {
            0
        } else {
            -1
        }
    } else if was_zero {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_invariant() {
        let mut a = Adjacency::new();
        a.apply(1, 2, 3);
        a.apply(1, 3, 1);
        a.apply(2, 2, 1);
        assert_eq!(a.get(1, 2), 3);
        assert_eq!(a.len(), 3);
        assert_eq!(a.deg_fwd(1), 2);
        assert_eq!(a.deg_bwd(2), 2);
        let col: Vec<_> = a.col(2).collect();
        assert_eq!(col.len(), 2);
    }

    #[test]
    fn cancellation_prunes() {
        let mut a = Adjacency::new();
        a.apply(1, 2, 2);
        a.apply(1, 2, -2);
        assert_eq!(a.len(), 0);
        assert_eq!(a.deg_fwd(1), 0);
        assert_eq!(a.get(1, 2), 0);
        assert!(a.row(1).next().is_none());
    }

    #[test]
    fn degrees_track_distinct_partners() {
        let mut a = Adjacency::new();
        for y in 0..10 {
            a.apply(7, y, 1);
        }
        assert_eq!(a.deg_fwd(7), 10);
        a.apply(7, 0, 5); // same partner, higher multiplicity
        assert_eq!(a.deg_fwd(7), 10);
        a.apply(7, 0, -6);
        assert_eq!(a.deg_fwd(7), 9);
    }
}
