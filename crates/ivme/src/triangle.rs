//! Dynamic triangle counting (Sec. 3 of the paper).
//!
//! The triangle count `Q = Σ_{A,B,C} R(A,B)·S(B,C)·T(C,A)` is the paper's
//! running example. Four maintainers, mirroring Sec. 3.1–3.3:
//!
//! | maintainer | update time | space | paper |
//! |---|---|---|---|
//! | [`TriangleRecount`] | O(N^{3/2}) | O(N) | recompute (Sec. 3.1) |
//! | [`TriangleDelta`] | O(N) | O(N) | first-order deltas (Sec. 3.1) |
//! | [`TrianglePairwiseMv`] | O(N) | O(N²) | materialized views (Sec. 3.2) |
//! | [`TriangleIvmEps`] | O(N^max(ε,1−ε)) amortized | O(N^{1+min(ε,1−ε)}) | IVMε (Sec. 3.3) |
//!
//! With ε = ½, IVMε meets the OuMv-conditional lower bound of Theorem 3.4:
//! no algorithm has both O(N^{1/2−γ}) updates and O(N^{1−γ}) delay.
//!
//! All maintainers share the rotation symmetry of the query: relation `i`
//! maps variable `i` to variable `i+1 (mod 3)` — `R: A→B`, `S: B→C`,
//! `T: C→A` — and every formula below is written once for the rotated
//! index `i`.

use crate::adjacency::Adjacency;
use ivm_data::{FxHashMap, FxHashSet};

/// The three relations of the triangle query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rel {
    /// `R(A, B)`
    R,
    /// `S(B, C)`
    S,
    /// `T(C, A)`
    T,
}

impl Rel {
    /// Rotation index: R→0, S→1, T→2.
    pub fn index(self) -> usize {
        match self {
            Rel::R => 0,
            Rel::S => 1,
            Rel::T => 2,
        }
    }

    /// All three, in rotation order.
    pub const ALL: [Rel; 3] = [Rel::R, Rel::S, Rel::T];
}

/// Common interface of the four triangle maintainers.
pub trait TriangleMaintainer {
    /// Apply a single-tuple update with multiplicity `m`.
    fn apply(&mut self, rel: Rel, x: u64, y: u64, m: i64);

    /// The maintained triangle count (with multiplicities).
    fn count(&self) -> i64;

    /// Boolean triangle detection `Qb` (Sec. 3.4).
    fn detect(&self) -> bool {
        self.count() > 0
    }

    /// Cumulative inner-loop operations — a machine-independent cost
    /// measure used by the scaling experiments.
    fn work(&self) -> u64;

    /// Display name for benchmark tables.
    fn name(&self) -> &'static str;
}

/// Shared storage: the three adjacency-indexed relations.
#[derive(Clone, Debug, Default)]
struct Base {
    rel: [Adjacency; 3],
    work: u64,
}

impl Base {
    fn total_size(&self) -> usize {
        self.rel.iter().map(|r| r.len()).sum()
    }

    /// `Σ_v rel[i+1](y, v) · rel[i+2](v, x)` by iterating the smaller
    /// side of the intersection — the delta query of Ex 3.1.
    fn intersect_count(&mut self, i: usize, x: u64, y: u64) -> i64 {
        let (j, k) = ((i + 1) % 3, (i + 2) % 3);
        let via_j = self.rel[j].deg_fwd(y);
        let via_k = self.rel[k].deg_bwd(x);
        let mut d = 0i64;
        if via_j <= via_k {
            self.work += via_j as u64 + 1;
            for (v, m1) in self.rel[j].row(y) {
                d += m1 * self.rel[k].get(v, x);
            }
        } else {
            self.work += via_k as u64 + 1;
            for (v, m2) in self.rel[k].col(x) {
                d += self.rel[j].get(y, v) * m2;
            }
        }
        d
    }

    /// Full recount: `Σ_{(a,b)∈R} R(a,b) · Σ_c S(b,c)·T(c,a)`.
    fn recount(&mut self) -> i64 {
        let tuples: Vec<(u64, u64, i64)> = self.rel[0].iter().collect();
        let mut total = 0i64;
        for (a, b, m) in tuples {
            total += m * self.intersect_count(0, a, b);
        }
        total
    }
}

/// Baseline: recompute the count from scratch after every update.
#[derive(Clone, Debug, Default)]
pub struct TriangleRecount {
    base: Base,
    count: i64,
}

impl TriangleRecount {
    /// Empty maintainer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TriangleMaintainer for TriangleRecount {
    fn apply(&mut self, rel: Rel, x: u64, y: u64, m: i64) {
        self.base.rel[rel.index()].apply(x, y, m);
        self.count = self.base.recount();
    }

    fn count(&self) -> i64 {
        self.count
    }

    fn work(&self) -> u64 {
        self.base.work
    }

    fn name(&self) -> &'static str {
        "recount"
    }
}

/// First-order deltas (Sec. 3.1): O(N) per single-tuple update, no extra
/// storage.
#[derive(Clone, Debug, Default)]
pub struct TriangleDelta {
    base: Base,
    count: i64,
}

impl TriangleDelta {
    /// Empty maintainer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TriangleMaintainer for TriangleDelta {
    fn apply(&mut self, rel: Rel, x: u64, y: u64, m: i64) {
        let i = rel.index();
        // δQ = δrel(x,y) · Σ_v rel[i+1](y,v)·rel[i+2](v,x); the other two
        // relations are unchanged by this update.
        self.count += m * self.base.intersect_count(i, x, y);
        self.base.rel[i].apply(x, y, m);
    }

    fn count(&self) -> i64 {
        self.count
    }

    fn work(&self) -> u64 {
        self.base.work
    }

    fn name(&self) -> &'static str {
        "delta"
    }
}

/// Higher-order maintenance with all three pairwise views (Sec. 3.2):
/// count deltas are O(1) lookups, but each view costs O(N) to maintain and
/// O(N²) to store.
#[derive(Clone, Debug, Default)]
pub struct TrianglePairwiseMv {
    base: Base,
    /// `view[i][(u, w)] = Σ_v rel[i+1](u,v) · rel[i+2](v,w)`; the count
    /// delta for `δrel[i](x,y)` is `view[i][(y, x)]`.
    view: [FxHashMap<(u64, u64), i64>; 3],
    count: i64,
}

impl TrianglePairwiseMv {
    /// Empty maintainer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total entries across the three views (the O(N²) space term).
    pub fn view_size(&self) -> usize {
        self.view.iter().map(|v| v.len()).sum()
    }
}

fn bump(map: &mut FxHashMap<(u64, u64), i64>, key: (u64, u64), d: i64) {
    if d == 0 {
        return;
    }
    let e = map.entry(key).or_insert(0);
    *e += d;
    if *e == 0 {
        map.remove(&key);
    }
}

impl TriangleMaintainer for TrianglePairwiseMv {
    fn apply(&mut self, rel: Rel, x: u64, y: u64, m: i64) {
        let i = rel.index();
        let (j, k) = ((i + 1) % 3, (i + 2) % 3);
        // O(1) count delta through the view over the other two relations.
        self.count += m * self.view[i].get(&(y, x)).copied().unwrap_or(0);
        // Maintain the two views that mention rel[i]:
        // view[j] = Σ rel[j+1]·rel[j+2] = Σ rel[k]·rel[i]: key (u, w) with
        // rel[i] contributing at v = x, w = y:
        //   view[j][(u, y)] += rel[k](u, x) · m  for all u.
        let contribs: Vec<(u64, i64)> = self.base.rel[k].col(x).collect();
        self.base.work += contribs.len() as u64 + 1;
        for (u, mk) in contribs {
            bump(&mut self.view[j], (u, y), mk * m);
        }
        // view[k] = Σ rel[i]·rel[j]: key (u=x, w) with
        //   view[k][(x, w)] += m · rel[j](y, w)  for all w.
        let contribs: Vec<(u64, i64)> = self.base.rel[j].row(y).collect();
        self.base.work += contribs.len() as u64 + 1;
        for (w, mj) in contribs {
            bump(&mut self.view[k], (x, w), m * mj);
        }
        self.base.rel[i].apply(x, y, m);
    }

    fn count(&self) -> i64 {
        self.count
    }

    fn work(&self) -> u64 {
        self.base.work
    }

    fn name(&self) -> &'static str {
        "pairwise-mv"
    }
}

/// IVMε (Sec. 3.3): heavy/light partitioned maintenance with amortized
/// O(N^max(ε,1−ε)) single-tuple updates — O(√N) at the optimal ε = ½.
///
/// Relation `i` is partitioned on its first column: a value `x` is *heavy*
/// when its degree reaches 2θ and *light* again below θ (the hysteresis
/// amortizes partition migrations), with θ = ⌈N^ε⌉ recomputed — and the
/// views rebuilt — whenever the database size drifts by 2× (the paper's
/// periodic rebalancing [18, 19, 20]).
///
/// The skew-aware count delta for `δrel[i](x, y)` follows Sec. 3.3:
///
/// * `y` light in `rel[i+1]`: iterate its ≤ 2θ partners (cases LL + LH);
/// * `y` heavy: iterate the ≤ N/θ heavy `rel[i+2]`-values (case HH) and
///   look up the materialized view `Σ rel[i+1]_H · rel[i+2]_L` (case HL).
#[derive(Clone, Debug)]
pub struct TriangleIvmEps {
    base: Base,
    eps: f64,
    /// Heavy first-column values per relation.
    heavy: [FxHashSet<u64>; 3],
    /// `view[i][(u, w)] = Σ_v rel[i+1]_H(u,v) · rel[i+2]_L(v,w)`
    /// (u heavy in rel[i+1], v light in rel[i+2]).
    view: [FxHashMap<(u64, u64), i64>; 3],
    count: i64,
    threshold: usize,
    base_n: usize,
    migrations: u64,
    rebalances: u64,
    /// Ablation switch: per-key migrations + global rebalances.
    rebalancing: bool,
    /// Ablation switch: the HL materialized views.
    hl_views: bool,
}

impl TriangleIvmEps {
    /// Empty maintainer with the given ε ∈ [0, 1].
    pub fn new(eps: f64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "ε must be in [0,1]");
        TriangleIvmEps {
            base: Base::default(),
            eps,
            heavy: Default::default(),
            view: Default::default(),
            count: 0,
            threshold: 1,
            base_n: 4,
            migrations: 0,
            rebalances: 0,
            rebalancing: true,
            hl_views: true,
        }
    }

    /// Disable per-key migrations and global rebalances (ablation).
    pub fn without_rebalancing(mut self) -> Self {
        self.rebalancing = false;
        self
    }

    /// Disable the HL materialized views (ablation): the HL case falls
    /// back to iterating the heavy row, degrading updates to O(N).
    pub fn without_hl_views(mut self) -> Self {
        self.hl_views = false;
        self
    }

    /// The current heavy/light threshold θ.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Partition migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Global rebalances performed.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Heavy-key counts per relation.
    pub fn heavy_counts(&self) -> [usize; 3] {
        [0, 1, 2].map(|i| self.heavy[i].len())
    }

    /// Total view entries (space accounting).
    pub fn view_size(&self) -> usize {
        self.view.iter().map(|v| v.len()).sum()
    }

    fn count_delta(&mut self, i: usize, x: u64, y: u64) -> i64 {
        let (j, k) = ((i + 1) % 3, (i + 2) % 3);
        let mut d = 0i64;
        if !self.heavy[j].contains(&y) {
            // y light in rel[j]: ≤ 2θ partners (LL + LH).
            let row: Vec<(u64, i64)> = self.base.rel[j].row(y).collect();
            self.base.work += row.len() as u64 + 1;
            for (v, m1) in row {
                d += m1 * self.base.rel[k].get(v, x);
            }
        } else if self.hl_views {
            // HH: ≤ N/θ heavy rel[k]-values.
            self.base.work += self.heavy[k].len() as u64 + 1;
            for &v in &self.heavy[k] {
                d += self.base.rel[j].get(y, v) * self.base.rel[k].get(v, x);
            }
            // HL: one view lookup.
            self.base.work += 1;
            d += self.view[i].get(&(y, x)).copied().unwrap_or(0);
        } else {
            // Ablation: no HL view — iterate the heavy row, O(deg).
            let row: Vec<(u64, i64)> = self.base.rel[j].row(y).collect();
            self.base.work += row.len() as u64 + 1;
            for (v, m1) in row {
                d += m1 * self.base.rel[k].get(v, x);
            }
        }
        d
    }

    /// Maintain the views that mention `rel[i]` under `δrel[i](x,y,m)`.
    ///
    /// `rel[i]` is the L-part of `view[i+2]` (at v = x) and the H-part of
    /// `view[i+1]` (at u = x).
    fn maintain_views(&mut self, i: usize, x: u64, y: u64, m: i64) {
        if !self.hl_views {
            return;
        }
        let (j, k) = ((i + 1) % 3, (i + 2) % 3);
        // view[k] = Σ_v rel[k+1]_H(u,v)·rel[k+2]_L(v,w) = Σ rel[i]... no:
        // k+1 = i+2+1 = i (mod 3) — so view[k]'s H-part is rel[i] (u = x)
        // and its L-part is rel[j] (v = y, must be light in rel[j]).
        if self.heavy[i].contains(&x) && !self.heavy[j].contains(&y) {
            let row: Vec<(u64, i64)> = self.base.rel[j].row(y).collect();
            self.base.work += row.len() as u64 + 1;
            for (w, mj) in row {
                bump(&mut self.view[k], (x, w), m * mj);
            }
        }
        // view[j]'s L-part is rel[i] (v = x, must be light in rel[i]);
        // its H-part is rel[k] (u ranges over heavy rel[k]-values).
        if !self.heavy[i].contains(&x) {
            self.base.work += self.heavy[k].len() as u64 + 1;
            let heavy_k: Vec<u64> = self.heavy[k].iter().copied().collect();
            for u in heavy_k {
                let mk = self.base.rel[k].get(u, x);
                if mk != 0 {
                    bump(&mut self.view[j], (u, y), mk * m);
                }
            }
        }
    }

    /// Move `x` across the heavy/light boundary of partition `i`,
    /// transferring its contributions between `view[i+1]` (where it is an
    /// L-part value) and `view[i+2]` (where it is an H-part value).
    fn migrate(&mut self, i: usize, x: u64, to_heavy: bool) {
        self.migrations += 1;
        let (j, k) = ((i + 1) % 3, (i + 2) % 3);
        let sign = if to_heavy { 1 } else { -1 };
        if to_heavy {
            self.heavy[i].insert(x);
        } else {
            self.heavy[i].remove(&x);
        }
        // H-part of view[k]: Σ_{v light in rel[j]} rel[i](x,v)·rel[j](v,w).
        let row: Vec<(u64, i64)> = self.base.rel[i].row(x).collect();
        for (v, m1) in &row {
            if !self.heavy[j].contains(v) {
                let inner: Vec<(u64, i64)> = self.base.rel[j].row(*v).collect();
                self.base.work += inner.len() as u64 + 1;
                for (w, m2) in inner {
                    bump(&mut self.view[k], (x, w), sign * m1 * m2);
                }
            }
        }
        // L-part of view[j]: Σ_{u heavy in rel[k]} rel[k](u,x)·rel[i](x,w)
        // — leaving the light part removes these terms (and vice versa).
        let heavy_k: Vec<u64> = self.heavy[k].iter().copied().collect();
        for u in heavy_k {
            let mk = self.base.rel[k].get(u, x);
            if mk == 0 {
                continue;
            }
            self.base.work += row.len() as u64 + 1;
            for (w, m1) in &row {
                bump(&mut self.view[j], (u, *w), -sign * mk * m1);
            }
        }
    }

    /// Recompute θ, repartition every relation, and rebuild the three
    /// views from scratch. O(N·θ); amortized O(θ) over the ≥ N/2 updates
    /// between rebalances.
    fn rebalance(&mut self) {
        self.rebalances += 1;
        let n = self.base.total_size().max(4);
        self.base_n = n;
        self.threshold = (n as f64).powf(self.eps).ceil().max(1.0) as usize;
        let promote = (3 * self.threshold).div_ceil(2);
        for i in 0..3 {
            self.heavy[i] = self.base.rel[i]
                .keys_fwd()
                .filter(|&x| self.base.rel[i].deg_fwd(x) >= promote)
                .collect();
        }
        for i in 0..3 {
            let (j, k) = ((i + 1) % 3, (i + 2) % 3);
            self.view[i].clear();
            let heavy_j: Vec<u64> = self.heavy[j].iter().copied().collect();
            for u in heavy_j {
                let row: Vec<(u64, i64)> = self.base.rel[j].row(u).collect();
                for (v, m1) in row {
                    if self.heavy[k].contains(&v) {
                        continue;
                    }
                    let inner: Vec<(u64, i64)> = self.base.rel[k].row(v).collect();
                    self.base.work += inner.len() as u64 + 1;
                    for (w, m2) in inner {
                        bump(&mut self.view[i], (u, w), m1 * m2);
                    }
                }
            }
        }
    }
}

impl TriangleMaintainer for TriangleIvmEps {
    fn apply(&mut self, rel: Rel, x: u64, y: u64, m: i64) {
        let i = rel.index();
        self.count += m * self.count_delta(i, x, y);
        self.maintain_views(i, x, y, m);
        let new_deg = self.base.rel[i].apply(x, y, m);
        if self.rebalancing && self.hl_views {
            let is_heavy = self.heavy[i].contains(&x);
            if !is_heavy && new_deg >= 2 * self.threshold {
                self.migrate(i, x, true);
            } else if is_heavy && new_deg <= self.threshold {
                self.migrate(i, x, false);
            }
            let n = self.base.total_size();
            if n > 2 * self.base_n || (n >= 8 && n * 2 < self.base_n) {
                self.rebalance();
            }
        }
    }

    fn count(&self) -> i64 {
        self.count
    }

    fn work(&self) -> u64 {
        self.base.work
    }

    fn name(&self) -> &'static str {
        "ivm-eps"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force oracle over explicit tuple lists.
    fn oracle(tuples: &[(Rel, u64, u64, i64)]) -> i64 {
        let mut rel = [Adjacency::new(), Adjacency::new(), Adjacency::new()];
        for &(r, x, y, m) in tuples {
            rel[r.index()].apply(x, y, m);
        }
        let mut total = 0i64;
        for (a, b, m0) in rel[0].iter() {
            for (c, m1) in rel[1].row(b) {
                total += m0 * m1 * rel[2].get(c, a);
            }
        }
        total
    }

    /// Fig 2 of the paper: count 19, then δR = {(a2,b1) ↦ −2} gives 13.
    #[test]
    fn paper_fig2_example() {
        // a1=1, a2=2, b1=1, c1=1, c2=2.
        let setup: Vec<(Rel, u64, u64, i64)> = vec![
            (Rel::R, 1, 1, 2),
            (Rel::R, 2, 1, 3),
            (Rel::S, 1, 1, 2),
            (Rel::S, 1, 2, 1),
            (Rel::T, 1, 1, 1),
            (Rel::T, 2, 1, 3),
            (Rel::T, 2, 2, 3),
        ];
        for mk in [0usize, 1, 2, 3] {
            let mut eng: Box<dyn TriangleMaintainer> = match mk {
                0 => Box::new(TriangleRecount::new()),
                1 => Box::new(TriangleDelta::new()),
                2 => Box::new(TrianglePairwiseMv::new()),
                _ => Box::new(TriangleIvmEps::new(0.5)),
            };
            for &(r, x, y, m) in &setup {
                eng.apply(r, x, y, m);
            }
            assert_eq!(eng.count(), 19, "{} setup", eng.name());
            eng.apply(Rel::R, 2, 1, -2);
            assert_eq!(eng.count(), 13, "{} after delete", eng.name());
            assert!(eng.detect());
        }
    }

    /// All four maintainers agree with the brute-force oracle on random
    /// insert/delete streams (including heavy skew to exercise
    /// migrations).
    #[test]
    fn maintainers_agree_with_oracle() {
        let mut rng = StdRng::seed_from_u64(2024);
        for round in 0..6 {
            let mut recount = TriangleRecount::new();
            let mut delta = TriangleDelta::new();
            let mut mv = TrianglePairwiseMv::new();
            let mut eps_engines: Vec<TriangleIvmEps> = [0.0, 0.3, 0.5, 0.8, 1.0]
                .iter()
                .map(|&e| TriangleIvmEps::new(e))
                .collect();
            let mut log: Vec<(Rel, u64, u64, i64)> = Vec::new();
            // Skewed: node 0 participates in most edges.
            for step in 0..250 {
                let rel = Rel::ALL[rng.gen_range(0..3usize)];
                let hub = rng.gen_bool(0.4);
                let x = if hub { 0 } else { rng.gen_range(0..8u64) };
                let y = rng.gen_range(0..8u64);
                let m: i64 = if rng.gen_bool(0.3) { -1 } else { 1 };
                log.push((rel, x, y, m));
                recount.apply(rel, x, y, m);
                delta.apply(rel, x, y, m);
                mv.apply(rel, x, y, m);
                for e in &mut eps_engines {
                    e.apply(rel, x, y, m);
                }
                if step % 50 == 0 || step == 249 {
                    let expect = oracle(&log);
                    assert_eq!(recount.count(), expect, "recount r{round} s{step}");
                    assert_eq!(delta.count(), expect, "delta r{round} s{step}");
                    assert_eq!(mv.count(), expect, "mv r{round} s{step}");
                    for e in &eps_engines {
                        assert_eq!(
                            e.count(),
                            expect,
                            "ivm-eps({}) r{round} s{step} (θ={}, heavy={:?})",
                            e.eps,
                            e.threshold(),
                            e.heavy_counts()
                        );
                    }
                }
            }
        }
    }

    /// Migrations and rebalances actually happen under skew and growth.
    #[test]
    fn rebalancing_kicks_in() {
        let mut eng = TriangleIvmEps::new(0.5);
        for i in 0..400u64 {
            eng.apply(Rel::R, 0, i, 1); // node 0 becomes very heavy in R
            eng.apply(Rel::S, i, i + 1, 1);
            eng.apply(Rel::T, i + 1, 0, 1);
        }
        assert!(eng.rebalances() > 0, "size grew 300×: must rebalance");
        assert!(eng.migrations() > 0 || eng.heavy_counts()[0] > 0);
        assert!(eng.heavy[0].contains(&0), "hub must be heavy in R");
        // Count correct: R(0,i)·S(i,i+1)·T(i+1,0) forms one triangle per i.
        assert_eq!(eng.count(), 400);
    }

    /// The ablated variants still count correctly (just slower).
    #[test]
    fn ablations_are_correct() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut no_views = TriangleIvmEps::new(0.5).without_hl_views();
        let mut no_rebal = TriangleIvmEps::new(0.5).without_rebalancing();
        let mut log = Vec::new();
        for _ in 0..200 {
            let rel = Rel::ALL[rng.gen_range(0..3usize)];
            let x = rng.gen_range(0..6u64);
            let y = rng.gen_range(0..6u64);
            let m: i64 = if rng.gen_bool(0.25) { -1 } else { 1 };
            log.push((rel, x, y, m));
            no_views.apply(rel, x, y, m);
            no_rebal.apply(rel, x, y, m);
        }
        let expect = oracle(&log);
        assert_eq!(no_views.count(), expect);
        assert_eq!(no_rebal.count(), expect);
    }

    /// Detection matches count positivity.
    #[test]
    fn detection() {
        let mut eng = TriangleIvmEps::new(0.5);
        assert!(!eng.detect());
        eng.apply(Rel::R, 1, 2, 1);
        eng.apply(Rel::S, 2, 3, 1);
        assert!(!eng.detect());
        eng.apply(Rel::T, 3, 1, 1);
        assert!(eng.detect());
        eng.apply(Rel::T, 3, 1, -1);
        assert!(!eng.detect());
    }

    /// The pairwise-MV maintainer reports its quadratic space.
    #[test]
    fn pairwise_view_space_grows() {
        let mut mv = TrianglePairwiseMv::new();
        let k = 20u64;
        for i in 0..k {
            mv.apply(Rel::S, 0, i, 1); // S(0, i)
            mv.apply(Rel::T, i, i, 1); // T(i, i)
        }
        // V_ST(b=0, a=i) has k entries; plus V_TR entries.
        assert!(mv.view_size() >= k as usize);
    }
}
