//! IVMε for the simplest non-q-hierarchical query (Ex 5.1, Fig 7):
//!
//! ```text
//! Q(A) = Σ_B R(A,B) · S(B)
//! ```
//!
//! Theorem 4.1 forbids simultaneously constant updates and delay here; the
//! trade-off space (Fig 7) is traced by ε ∈ [0, 1]:
//!
//! * preprocessing O(N), update O(N^ε), enumeration delay O(N^{1−ε});
//! * ε = 1 is the *eager* extreme (full materialization of Q);
//! * ε = 0 is the *lazy* extreme (store the inputs, join on demand);
//! * ε = ½ touches the OuMv lower-bound cuboid: weak Pareto optimality.
//!
//! The engine partitions `B`-values by their degree in `R`: the aggregate
//! `Q_L(a) = Σ_{b light} R(a,b)·S(b)` is materialized (so light updates
//! are cheap), while heavy `B`-values — at most N^{1−ε} of them — are
//! joined at enumeration time.

use crate::adjacency::Adjacency;
use ivm_data::{FxHashMap, FxHashSet};

/// ε-parameterized maintenance for `Q(A) = Σ_B R(A,B)·S(B)`.
#[derive(Clone, Debug)]
pub struct QhEpsEngine {
    eps: f64,
    /// `R(A,B)`: fwd a→b, bwd b→a.
    r: Adjacency,
    /// `S(B)` payloads.
    s: FxHashMap<u64, i64>,
    /// Heavy `B`-values (degree in `R`'s B-column ≥ ~θ, with hysteresis).
    heavy_b: FxHashSet<u64>,
    /// Materialized `Q_L(a) = Σ_{b light} R(a,b)·S(b)`.
    q_light: FxHashMap<u64, i64>,
    threshold: usize,
    base_n: usize,
    work: u64,
    migrations: u64,
    rebalances: u64,
}

impl QhEpsEngine {
    /// Empty engine with the given ε ∈ [0, 1].
    pub fn new(eps: f64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "ε must be in [0,1]");
        QhEpsEngine {
            eps,
            r: Adjacency::new(),
            s: FxHashMap::default(),
            heavy_b: FxHashSet::default(),
            q_light: FxHashMap::default(),
            threshold: 1,
            base_n: 4,
            work: 0,
            migrations: 0,
            rebalances: 0,
        }
    }

    /// Cumulative inner-loop operations.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Number of heavy `B`-values (the per-tuple enumeration overhead).
    pub fn heavy_len(&self) -> usize {
        self.heavy_b.len()
    }

    /// Current θ.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Partition migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Whether `b` currently sits in the heavy partition.
    pub fn is_heavy_b(&self, b: u64) -> bool {
        self.heavy_b.contains(&b)
    }

    /// Degree of `b` in `R`'s B-column (the partitioning degree).
    pub fn deg_b(&self, b: u64) -> usize {
        self.r.deg_bwd(b)
    }

    /// Apply `δR(a, b) ↦ m`. O(N^ε) amortized.
    pub fn apply_r(&mut self, a: u64, b: u64, m: i64) {
        self.work += 1;
        if !self.heavy_b.contains(&b) {
            let sv = self.s.get(&b).copied().unwrap_or(0);
            if sv != 0 {
                bump(&mut self.q_light, a, m * sv);
            }
        }
        let _ = self.r.apply(a, b, m);
        let deg = self.r.deg_bwd(b);
        if !self.heavy_b.contains(&b) && deg >= 2 * self.threshold {
            self.migrate(b, true);
        } else if self.heavy_b.contains(&b) && deg <= self.threshold {
            self.migrate(b, false);
        }
        self.maybe_rebalance();
    }

    /// Apply `δS(b) ↦ m`. O(N^ε) (iterates `b`'s ≤ 2θ partners when `b`
    /// is light; O(1) when heavy).
    pub fn apply_s(&mut self, b: u64, m: i64) {
        self.work += 1;
        if !self.heavy_b.contains(&b) {
            let partners: Vec<(u64, i64)> = self.r.col(b).collect();
            self.work += partners.len() as u64;
            for (a, rm) in partners {
                bump(&mut self.q_light, a, rm * m);
            }
        }
        let e = self.s.entry(b).or_insert(0);
        *e += m;
        if *e == 0 {
            self.s.remove(&b);
        }
        self.maybe_rebalance();
    }

    /// `Q(a)` for a single `A`-value: one lookup plus the heavy join,
    /// O(N^{1−ε}).
    pub fn lookup(&mut self, a: u64) -> i64 {
        let mut v = self.q_light.get(&a).copied().unwrap_or(0);
        self.work += 1 + self.heavy_b.len() as u64;
        for &b in &self.heavy_b {
            let rm = self.r.get(a, b);
            if rm != 0 {
                v += rm * self.s.get(&b).copied().unwrap_or(0);
            }
        }
        v
    }

    /// Enumerate `(a, Q(a))` for all non-zero groups; per-tuple delay
    /// O(N^{1−ε}).
    pub fn enumerate(&mut self, f: &mut dyn FnMut(u64, i64)) {
        let keys: Vec<u64> = self.r.keys_fwd().collect();
        for a in keys {
            let v = self.lookup(a);
            if v != 0 {
                f(a, v);
            }
        }
    }

    /// Materialize the output (test helper).
    pub fn output(&mut self) -> FxHashMap<u64, i64> {
        let mut out = FxHashMap::default();
        self.enumerate(&mut |a, v| {
            out.insert(a, v);
        });
        out
    }

    fn migrate(&mut self, b: u64, to_heavy: bool) {
        self.migrations += 1;
        let sv = self.s.get(&b).copied().unwrap_or(0);
        let sign = if to_heavy { -1 } else { 1 };
        if to_heavy {
            self.heavy_b.insert(b);
        } else {
            self.heavy_b.remove(&b);
        }
        if sv != 0 {
            let partners: Vec<(u64, i64)> = self.r.col(b).collect();
            self.work += partners.len() as u64;
            for (a, rm) in partners {
                bump(&mut self.q_light, a, sign * rm * sv);
            }
        }
    }

    fn maybe_rebalance(&mut self) {
        let n = self.r.len() + self.s.len();
        if n > 2 * self.base_n || (n >= 8 && n * 2 < self.base_n) {
            self.rebalances += 1;
            self.base_n = n.max(4);
            self.threshold = (n.max(1) as f64).powf(self.eps).ceil().max(1.0) as usize;
            let promote = (3 * self.threshold).div_ceil(2);
            // Repartition and rebuild Q_L from scratch: O(N) amortized
            // over the ≥ N/2 updates since the last rebalance.
            let bs: Vec<u64> = self.s.keys().copied().collect();
            self.heavy_b.clear();
            for b in bs {
                if self.r.deg_bwd(b) >= promote {
                    self.heavy_b.insert(b);
                }
            }
            // Also B-values present in R but not S can be heavy.
            let rb: Vec<u64> = self
                .r
                .iter()
                .map(|(_, b, _)| b)
                .collect::<FxHashSet<_>>()
                .into_iter()
                .collect();
            for b in rb {
                if self.r.deg_bwd(b) >= promote {
                    self.heavy_b.insert(b);
                }
            }
            self.q_light.clear();
            let entries: Vec<(u64, i64)> = self.s.iter().map(|(&b, &m)| (b, m)).collect();
            for (b, sv) in entries {
                if self.heavy_b.contains(&b) {
                    continue;
                }
                let partners: Vec<(u64, i64)> = self.r.col(b).collect();
                self.work += partners.len() as u64 + 1;
                for (a, rm) in partners {
                    bump(&mut self.q_light, a, rm * sv);
                }
            }
        }
    }
}

fn bump(map: &mut FxHashMap<u64, i64>, key: u64, d: i64) {
    if d == 0 {
        return;
    }
    let e = map.entry(key).or_insert(0);
    *e += d;
    if *e == 0 {
        map.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn oracle(r: &[(u64, u64, i64)], s: &[(u64, i64)]) -> FxHashMap<u64, i64> {
        let mut sm: FxHashMap<u64, i64> = FxHashMap::default();
        for &(b, m) in s {
            *sm.entry(b).or_insert(0) += m;
        }
        let mut out: FxHashMap<u64, i64> = FxHashMap::default();
        for &(a, b, m) in r {
            let sv = sm.get(&b).copied().unwrap_or(0);
            if sv != 0 {
                *out.entry(a).or_insert(0) += m * sv;
            }
        }
        out.retain(|_, v| *v != 0);
        out
    }

    #[test]
    fn basic_maintenance() {
        let mut eng = QhEpsEngine::new(0.5);
        eng.apply_r(1, 10, 1);
        eng.apply_r(1, 11, 2);
        eng.apply_s(10, 3);
        assert_eq!(eng.lookup(1), 3);
        eng.apply_s(11, 1);
        assert_eq!(eng.lookup(1), 3 + 2);
        eng.apply_r(1, 10, -1);
        assert_eq!(eng.lookup(1), 2);
    }

    /// Every ε agrees with the oracle under skewed random streams.
    #[test]
    fn all_eps_agree_with_oracle() {
        for &eps in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut rng = StdRng::seed_from_u64(77);
            let mut eng = QhEpsEngine::new(eps);
            let mut r_log = Vec::new();
            let mut s_log = Vec::new();
            for step in 0..400 {
                if rng.gen_bool(0.6) {
                    // Skew: b=0 is a hub.
                    let a = rng.gen_range(0..20u64);
                    let b = if rng.gen_bool(0.5) {
                        0
                    } else {
                        rng.gen_range(0..10u64)
                    };
                    let m: i64 = if rng.gen_bool(0.3) { -1 } else { 1 };
                    eng.apply_r(a, b, m);
                    r_log.push((a, b, m));
                } else {
                    let b = rng.gen_range(0..10u64);
                    let m: i64 = if rng.gen_bool(0.3) { -1 } else { 1 };
                    eng.apply_s(b, m);
                    s_log.push((b, m));
                }
                if step % 80 == 0 || step == 399 {
                    let expect = oracle(&r_log, &s_log);
                    let got = eng.output();
                    assert_eq!(got, expect, "eps={eps} step={step}");
                }
            }
        }
    }

    /// ε endpoints behave as the paper's extremes: at ε=1 nothing is
    /// heavy (eager materialization), at ε=0 hubs go heavy immediately
    /// (lazy join at enumeration).
    #[test]
    fn eps_extremes_partition_differently() {
        let build = |eps: f64| {
            let mut eng = QhEpsEngine::new(eps);
            for i in 0..200u64 {
                eng.apply_r(i, 0, 1); // b=0 has degree 200
                eng.apply_s(i % 7, 1);
            }
            eng
        };
        let eager = build(1.0);
        assert_eq!(eager.heavy_len(), 0, "ε=1: θ=N, nothing is heavy");
        let lazy = build(0.0);
        assert!(lazy.heavy_len() > 0, "ε=0: θ=1, the hub is heavy");
    }

    /// Negative multiplicities and cancellations stay consistent (the
    /// output is a flat aggregate, not a factorized enumeration, so mixed
    /// signs are fine here).
    #[test]
    fn cancellation() {
        let mut eng = QhEpsEngine::new(0.5);
        eng.apply_r(1, 5, 1);
        eng.apply_s(5, 1);
        assert_eq!(eng.lookup(1), 1);
        eng.apply_s(5, -1);
        assert_eq!(eng.lookup(1), 0);
        assert!(eng.output().is_empty());
    }

    /// Migrations fire when a B-value's degree crosses the threshold.
    #[test]
    fn migrations_fire() {
        let mut eng = QhEpsEngine::new(0.3);
        eng.apply_s(0, 1);
        for a in 0..300u64 {
            eng.apply_r(a, 0, 1);
        }
        assert!(eng.migrations() > 0);
        // And the hub's contributions moved out of Q_L and back through
        // the heavy path consistently.
        assert_eq!(eng.lookup(7), 1);
    }
}
