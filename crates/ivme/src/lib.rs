//! IVMε (Sec. 3.3 and Sec. 5 of the paper): worst-case optimal incremental
//! maintenance via heavy/light data partitioning.
//!
//! Two specialized kernels over raw `u64` keys (DESIGN.md §5 explains why
//! these bypass the generic `Value`-tuple engine):
//!
//! * [`triangle`] — the triangle count query
//!   `Q = Σ_{A,B,C} R(A,B)·S(B,C)·T(C,A)` with O(N^max(ε,1−ε)) amortized
//!   single-tuple updates (O(√N) at ε = ½), plus the three baselines the
//!   paper discusses: full recount, first-order deltas, and pairwise
//!   materialized views;
//! * [`qh`] — the simplest non-q-hierarchical query
//!   `Q(A) = Σ_B R(A,B)·S(B)` (Ex 5.1), realizing every point
//!   (1, ε, 1−ε) of the preprocessing/update/delay trade-off of Fig 7.

pub mod adjacency;
pub mod qh;
pub mod triangle;

pub use qh::QhEpsEngine;
pub use triangle::{
    Rel, TriangleDelta, TriangleIvmEps, TriangleMaintainer, TrianglePairwiseMv, TriangleRecount,
};
